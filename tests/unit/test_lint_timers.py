"""Unit tests for the timerlint pass (TIM001..TIM010).

Same shape as ``test_lint_rules.py``: per rule, a fixture that must
fire, the fixture with a ``# detlint: disable=...`` comment that must
stay silent, and compliant code that must not be flagged. The abstract
interpreter behind TIM001..TIM003 gets extra path-sensitivity coverage,
and the hardened rule registry (duplicate ids, malformed ids, unknown
severities) is tested at the end.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import lint_source, render_rule_list
from repro.lint.framework import Rule, register, registry


def findings_for(source: str, module: str = "repro.sim.fixture") -> list:
    report = lint_source(textwrap.dedent(source), path="fixture.py", module=module)
    assert not report.parse_errors
    return report.findings


def rule_ids_of(source: str, module: str = "repro.sim.fixture") -> set:
    return {f.rule_id for f in findings_for(source, module=module)}


#: Fixture preamble shared by the lifecycle tests: a labelled Timer and a
#: named delay keep TIM005/TIM007 out of tests that target other rules.
_PREAMBLE = 'from repro.sim.timers import Timer\n\nDELAY = 5.0\n'


def _with_preamble(source: str) -> str:
    return _PREAMBLE + textwrap.dedent(source)


# ----------------------------------------------------------------------
# TIM001 — leaked armed handle
# ----------------------------------------------------------------------


class TestTIM001:
    def test_fires_on_armed_and_dropped_handle(self):
        ids = rule_ids_of(
            _with_preamble("""
            def leak(engine, cb):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                t.start(DELAY)
            """)
        )
        assert ids == {"TIM001"}

    def test_fires_on_early_return_path(self):
        findings = [
            f
            for f in findings_for(
                _with_preamble("""
                def leak(engine, cb, hurry):
                    t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                    t.start(DELAY)
                    if hurry:
                        return None
                    t.cancel()
                """)
            )
            if f.rule_id == "TIM001"
        ]
        assert len(findings) == 1

    def test_respects_disable_comment(self):
        assert not findings_for(
            _with_preamble("""
            def leak(engine, cb):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                t.start(DELAY)  # detlint: disable=TIM001
            """)
        )

    def test_quiet_when_stored_returned_or_cancelled(self):
        assert not findings_for(
            _with_preamble("""
            def stored(self, engine, cb):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                t.start(DELAY)
                self.timer = t

            def returned(engine, cb):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                t.start(DELAY)
                return t

            def cancelled(engine, cb):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                t.start(DELAY)
                t.cancel()
            """)
        )

    def test_quiet_when_cancelled_by_intra_file_helper(self):
        # The call-graph refinement: a helper whose only timer effect is
        # cancelling counts as a disarm, not an escape-and-forget.
        assert not findings_for(
            _with_preamble("""
            def disarm(timer):
                timer.cancel()

            def uses_helper(engine, cb):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                t.start(DELAY)
                disarm(t)
            """)
        )

    def test_exception_paths_are_excused(self):
        assert not findings_for(
            _with_preamble("""
            def aborts(engine, cb):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                t.start(DELAY)
                raise RuntimeError("bail")
            """)
        )


# ----------------------------------------------------------------------
# TIM002 — double-arm
# ----------------------------------------------------------------------


class TestTIM002:
    def test_fires_on_start_while_pending(self):
        ids = rule_ids_of(
            _with_preamble("""
            def double(engine, cb):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                t.start(DELAY)
                t.start(DELAY)
                return t
            """)
        )
        assert "TIM002" in ids

    def test_fires_when_loop_can_rearm(self):
        ids = rule_ids_of(
            _with_preamble("""
            def loops(engine, cb, rounds):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                for _ in rounds:
                    t.start(DELAY)
                return t
            """)
        )
        assert "TIM002" in ids

    def test_respects_disable_comment(self):
        assert "TIM002" not in rule_ids_of(
            _with_preamble("""
            def double(engine, cb):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                t.start(DELAY)
                t.start(DELAY)  # detlint: disable=TIM002
                return t
            """)
        )

    def test_quiet_on_cancel_between_and_on_reschedule(self):
        assert not findings_for(
            _with_preamble("""
            def restart(engine, cb):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                t.start(DELAY)
                t.cancel()
                t.reschedule(DELAY)
                return t

            def rearm_loop(engine, cb, rounds):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                for _ in rounds:
                    t.reschedule(DELAY)
                return t
            """)
        )

    def test_quiet_on_exclusive_branches(self):
        assert not findings_for(
            _with_preamble("""
            def branchy(engine, cb, fast):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                if fast:
                    t.start(DELAY)
                else:
                    t.start(DELAY)
                return t
            """)
        )


# ----------------------------------------------------------------------
# TIM003 — re-arm after cancel
# ----------------------------------------------------------------------


class TestTIM003:
    def test_fires_on_start_after_cancel(self):
        findings = [
            f
            for f in findings_for(
                _with_preamble("""
                def rearm(engine, cb):
                    t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                    t.start(DELAY)
                    t.cancel()
                    t.start(DELAY)
                    return t
                """)
            )
            if f.rule_id == "TIM003"
        ]
        assert len(findings) == 1
        assert findings[0].severity == "warning"

    def test_respects_disable_comment(self):
        assert "TIM003" not in rule_ids_of(
            _with_preamble("""
            def rearm(engine, cb):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                t.start(DELAY)
                t.cancel()
                t.start(DELAY)  # detlint: disable=TIM003
                return t
            """)
        )

    def test_quiet_when_only_one_path_cancelled(self):
        # Joined state is {cancelled, pending-free idle...}: start() after
        # a *maybe* cancel is not flagged (the rule requires certainty).
        assert "TIM003" not in rule_ids_of(
            _with_preamble("""
            def maybe(engine, cb, flag):
                t = Timer(engine, cb, name="x", actor="r", tag="reuse")
                if flag:
                    t.start(DELAY)
                    t.cancel()
                t.start(DELAY)
                return t
            """)
        )


# ----------------------------------------------------------------------
# TIM004 — callback mutates damping state off the charge API
# ----------------------------------------------------------------------


class TestTIM004:
    def test_fires_on_method_callback_mutating_penalty(self):
        ids = rule_ids_of(
            _with_preamble("""
            class Owner:
                def flush(self):
                    self.entry.penalty = 0.0

                def arm(self, engine):
                    t = Timer(engine, self.flush, name="x", actor="r", tag="reuse")
                    t.start(DELAY)
                    return t
            """)
        )
        assert "TIM004" in ids

    def test_fires_through_partial_and_transitive_call(self):
        ids = rule_ids_of(
            _with_preamble("""
            from functools import partial

            def poke(entry):
                entry.suppressed = True

            def outer(entry):
                poke(entry)

            def arm(engine, entry):
                t = Timer(engine, partial(outer, entry), name="x", actor="r", tag="reuse")
                t.start(DELAY)
                return t
            """)
        )
        assert "TIM004" in ids

    def test_respects_disable_comment(self):
        assert "TIM004" not in rule_ids_of(
            _with_preamble("""
            def poke(entry):
                entry.penalty.charge(0.0, None)

            def arm(engine, entry):
                from functools import partial
                t = Timer(engine, partial(poke, entry), name="x", actor="r", tag="reuse")  # detlint: disable=TIM004
                t.start(DELAY)
                return t
            """)
        )

    def test_quiet_in_damping_module_and_for_clean_callbacks(self):
        source = _with_preamble("""
            class Owner:
                def flush(self):
                    self.entry.penalty = 0.0

                def arm(self, engine):
                    t = Timer(engine, self.flush, name="x", actor="r", tag="reuse")
                    t.start(DELAY)
                    return t
            """)
        assert "TIM004" not in rule_ids_of(source, module="repro.core.damping")
        assert "TIM004" not in rule_ids_of(
            _with_preamble("""
            class Owner:
                def note(self):
                    self.count += 1

                def arm(self, engine):
                    t = Timer(engine, self.note, name="x", actor="r", tag="reuse")
                    t.start(DELAY)
                    return t
            """)
        )


# ----------------------------------------------------------------------
# TIM005 — raw delay literal
# ----------------------------------------------------------------------


class TestTIM005:
    def test_fires_on_literal_delay(self):
        ids = rule_ids_of(
            """
            def arm(timer):
                timer.reschedule(30.0)
            """
        )
        assert "TIM005" in ids

    def test_fires_on_engine_schedule_literal(self):
        ids = rule_ids_of(
            """
            def arm(engine, cb):
                engine.schedule(15, cb)
            """
        )
        assert "TIM005" in ids

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def arm(timer):
                timer.reschedule(30.0)  # detlint: disable=TIM005
            """
        )

    def test_quiet_on_named_delay_and_zero(self):
        assert not findings_for(
            """
            HALF_LIFE = 900.0

            def arm(timer, engine, cb, params):
                timer.reschedule(HALF_LIFE)
                timer.restart_if_idle(params.reuse_interval)
                engine.schedule(0.0, cb)
            """
        )


# ----------------------------------------------------------------------
# TIM006 — manual call of a timer-expiry internal
# ----------------------------------------------------------------------


class TestTIM006:
    def test_fires_on_each_internal(self):
        source = """
            def flush_now(timer, limiter, manager):
                timer._fire()
                limiter._expired("p1")
                manager._reuse_fired("p1", "10.0.0.0/8")
            """
        findings = [f for f in findings_for(source) if f.rule_id == "TIM006"]
        assert len(findings) == 3

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def flush_now(timer):
                timer._fire()  # detlint: disable=TIM006
            """
        )

    def test_quiet_on_reference_without_call(self):
        # Passing the bound method as a callback is the normal idiom.
        assert not findings_for(
            """
            def arm(engine, timer):
                engine.schedule_at(10.0, timer._fire)
            """
        )


# ----------------------------------------------------------------------
# TIM007 — unlabeled Timer construction
# ----------------------------------------------------------------------


class TestTIM007:
    def test_fires_and_is_warning(self):
        findings = [
            f
            for f in findings_for(
                """
                from repro.sim.timers import Timer

                def build(engine, cb):
                    return Timer(engine, cb, name="x")
                """
            )
            if f.rule_id == "TIM007"
        ]
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "actor=" in findings[0].message and "tag=" in findings[0].message

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            from repro.sim.timers import Timer

            def build(engine, cb):
                return Timer(engine, cb, name="x")  # detlint: disable=TIM007
            """
        )

    def test_quiet_on_fully_labeled_timer(self):
        assert not findings_for(
            """
            from repro.sim.timers import Timer

            def build(engine, cb):
                return Timer(engine, cb, name="x", actor="r1", tag="mrai")
            """
        )


# ----------------------------------------------------------------------
# TIM008 — unclamped delay subtraction
# ----------------------------------------------------------------------


class TestTIM008:
    def test_fires_on_bare_subtraction(self):
        ids = rule_ids_of(
            """
            def arm(timer, deadline, engine):
                timer.reschedule(deadline - engine.now)
            """
        )
        assert "TIM008" in ids

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def arm(timer, deadline, engine):
                timer.reschedule(deadline - engine.now)  # detlint: disable=TIM008
            """
        )

    def test_quiet_on_clamped_or_absolute(self):
        assert not findings_for(
            """
            def arm(timer, engine, cb, deadline):
                timer.reschedule(max(0.0, deadline - engine.now))
                engine.schedule_at(deadline, cb)
            """
        )


# ----------------------------------------------------------------------
# TIM009 — timer state vs. string literal
# ----------------------------------------------------------------------


class TestTIM009:
    def test_fires_on_string_compare(self):
        ids = rule_ids_of(
            """
            def check(timer):
                return timer.state == "pending"
            """
        )
        assert "TIM009" in ids

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def check(timer):
                return timer.state == "pending"  # detlint: disable=TIM009
            """
        )

    def test_quiet_on_enum_compare_and_unrelated_state(self):
        assert not findings_for(
            """
            from repro.sim.timers import TimerState

            def check(timer, session):
                return timer.state is TimerState.PENDING or session.state == "up"
            """
        )


# ----------------------------------------------------------------------
# TIM010 — arming inside __init__
# ----------------------------------------------------------------------


class TestTIM010:
    def test_fires_and_is_warning(self):
        findings = [
            f
            for f in findings_for(
                """
                from repro.sim.timers import Timer

                class Eager:
                    def __init__(self, engine, cb, delay):
                        self.timer = Timer(engine, cb, name="x", actor="r", tag="mrai")
                        self.timer.reschedule(delay)
                """
            )
            if f.rule_id == "TIM010"
        ]
        assert len(findings) == 1
        assert findings[0].severity == "warning"

    def test_fires_on_engine_schedule_in_init(self):
        assert "TIM010" in rule_ids_of(
            """
            class Eager:
                def __init__(self, engine, cb, delay):
                    engine.schedule(delay, cb)
            """
        )

    def test_respects_disable_comment(self):
        assert "TIM010" not in rule_ids_of(
            """
            class Eager:
                def __init__(self, engine, cb, delay):
                    engine.schedule(delay, cb)  # detlint: disable=TIM010
            """
        )

    def test_quiet_on_idle_construction(self):
        assert not findings_for(
            """
            from repro.sim.timers import Timer

            class Lazy:
                def __init__(self, engine, cb):
                    self.timer = Timer(engine, cb, name="x", actor="r", tag="mrai")

                def bring_up(self, delay):
                    self.timer.reschedule(delay)
            """
        )


# ----------------------------------------------------------------------
# severity plumbing
# ----------------------------------------------------------------------


class TestSeverity:
    WARNING_ONLY = """
        from repro.sim.timers import Timer

        def build(engine, cb):
            return Timer(engine, cb, name="x")
        """

    def test_blocking_findings_honours_fail_on(self):
        report = lint_source(
            textwrap.dedent(self.WARNING_ONLY),
            path="fixture.py",
            module="repro.sim.fixture",
        )
        assert {f.severity for f in report.findings} == {"warning"}
        assert report.blocking_findings("warning") == report.findings
        assert report.blocking_findings("error") == []
        assert report.blocking_findings("never") == []

    def test_rule_list_marks_non_error_severities(self):
        listing = render_rule_list()
        assert "TIM003 [warning]" in listing
        assert "TIM001  " in listing  # errors carry no marker


# ----------------------------------------------------------------------
# hardened rule registry
# ----------------------------------------------------------------------


class TestRegistryHardening:
    def test_duplicate_rule_id_raises_and_keeps_original(self):
        original = registry()["TIM001"]

        class Impostor(Rule):
            id = "TIM001"
            title = "duplicate"
            rationale = "duplicate"

        with pytest.raises(ValueError, match="duplicate rule id TIM001"):
            register(Impostor)
        assert registry()["TIM001"] is original

    def test_missing_id_raises(self):
        class Nameless(Rule):
            title = "no id"
            rationale = "no id"

        with pytest.raises(ValueError, match="has no id"):
            register(Nameless)

    @pytest.mark.parametrize("bad_id", ["tim001", "TIMER1", "TIM01", "TIM0001"])
    def test_malformed_id_raises(self, bad_id):
        class Malformed(Rule):
            id = bad_id
            title = "bad id"
            rationale = "bad id"

        with pytest.raises(ValueError, match="does not match"):
            register(Malformed)
        assert bad_id not in registry()

    def test_unknown_severity_raises(self):
        class Loud(Rule):
            id = "ZZZ001"
            title = "bad severity"
            rationale = "bad severity"
            severity = "fatal"

        with pytest.raises(ValueError, match="severity"):
            register(Loud)
        assert "ZZZ001" not in registry()

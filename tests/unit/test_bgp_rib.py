"""Unit tests for the RIB tables and update classification."""

from __future__ import annotations

from repro.bgp.attrs import Route
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib
from repro.core.params import UpdateKind
from repro.core.rcn import RootCause


def rc(seq: int) -> RootCause:
    return RootCause(link=("o", "i"), status="down", seq=seq)


class TestAdjRibIn:
    def test_first_announcement_classifies_none(self):
        table = AdjRibIn("peer")
        assert table.classify("p0", ("peer", "o")) is None

    def test_withdrawal_of_unknown_prefix_classifies_none(self):
        table = AdjRibIn("peer")
        assert table.classify("p0", None) is None

    def test_withdrawal_of_known_route(self):
        table = AdjRibIn("peer")
        table.apply("p0", ("peer", "o"), None)
        assert table.classify("p0", None) is UpdateKind.WITHDRAWAL

    def test_duplicate_withdrawal_classifies_none(self):
        table = AdjRibIn("peer")
        table.apply("p0", ("peer", "o"), None)
        table.apply("p0", None, None)
        assert table.classify("p0", None) is None

    def test_reannouncement_after_withdrawal(self):
        table = AdjRibIn("peer")
        table.apply("p0", ("peer", "o"), None)
        table.apply("p0", None, None)
        assert table.classify("p0", ("peer", "o")) is UpdateKind.REANNOUNCEMENT

    def test_attribute_change(self):
        table = AdjRibIn("peer")
        table.apply("p0", ("peer", "o"), None)
        assert table.classify("p0", ("peer", "x", "o")) is UpdateKind.ATTRIBUTE_CHANGE

    def test_duplicate_announcement(self):
        table = AdjRibIn("peer")
        table.apply("p0", ("peer", "o"), None)
        assert table.classify("p0", ("peer", "o")) is UpdateKind.DUPLICATE

    def test_apply_stores_route_and_cause(self):
        table = AdjRibIn("peer")
        entry = table.apply("p0", ("peer", "o"), rc(1))
        assert entry.route == Route(prefix="p0", as_path=("peer", "o"), learned_from="peer")
        assert entry.root_cause == rc(1)
        assert entry.ever_announced

    def test_apply_withdrawal_clears_route_keeps_flag(self):
        table = AdjRibIn("peer")
        table.apply("p0", ("peer", "o"), rc(1))
        entry = table.apply("p0", None, rc(2))
        assert entry.route is None
        assert entry.ever_announced
        assert entry.root_cause == rc(2)

    def test_route_accessor(self):
        table = AdjRibIn("peer")
        assert table.route("p0") is None
        table.apply("p0", ("peer", "o"), None)
        assert table.route("p0").as_path == ("peer", "o")

    def test_prefixes(self):
        table = AdjRibIn("peer")
        table.apply("p0", ("peer", "o"), None)
        table.apply("p1", None, None)
        assert sorted(table.prefixes()) == ["p0", "p1"]
        assert len(table) == 2


class TestLocRib:
    def test_set_and_get(self):
        rib = LocRib()
        route = Route(prefix="p0", as_path=("a",), learned_from="a")
        assert rib.set_route("p0", route) is True
        assert rib.route("p0") == route

    def test_set_same_route_is_no_change(self):
        rib = LocRib()
        route = Route(prefix="p0", as_path=("a",), learned_from="a")
        rib.set_route("p0", route)
        assert rib.set_route("p0", route) is False

    def test_clear_route(self):
        rib = LocRib()
        route = Route(prefix="p0", as_path=("a",), learned_from="a")
        rib.set_route("p0", route)
        assert rib.set_route("p0", None) is True
        assert rib.route("p0") is None
        assert rib.set_route("p0", None) is False

    def test_change_route(self):
        rib = LocRib()
        first = Route(prefix="p0", as_path=("a",), learned_from="a")
        second = Route(prefix="p0", as_path=("b", "a"), learned_from="b")
        rib.set_route("p0", first)
        assert rib.set_route("p0", second) is True
        assert rib.route("p0") == second

    def test_iteration_and_len(self):
        rib = LocRib()
        rib.set_route("p0", Route(prefix="p0", as_path=("a",), learned_from="a"))
        assert len(rib) == 1
        assert [prefix for prefix, _ in rib] == ["p0"]
        assert rib.prefixes() == ["p0"]


class TestAdjRibOut:
    def test_initially_nothing_announced(self):
        table = AdjRibOut("peer")
        assert table.announced_route("p0") is None
        assert not table.has_announced("p0")

    def test_record_announcement(self):
        table = AdjRibOut("peer")
        route = Route(prefix="p0", as_path=("me", "o"), learned_from="me")
        table.record_announcement("p0", route)
        assert table.announced_route("p0") == route
        assert table.has_announced("p0")
        assert table.entry("p0").last_announced_length == 2

    def test_record_withdrawal_keeps_length_history(self):
        table = AdjRibOut("peer")
        route = Route(prefix="p0", as_path=("me", "o"), learned_from="me")
        table.record_announcement("p0", route)
        table.record_withdrawal("p0")
        assert table.announced_route("p0") is None
        # The selective-damping preference comparison needs the last
        # announced length across a withdrawal.
        assert table.entry("p0").last_announced_length == 2

    def test_prefixes(self):
        table = AdjRibOut("peer")
        table.record_withdrawal("p0")
        assert table.prefixes() == ["p0"]

"""Unit tests for time-series helpers and report rendering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.metrics.report import render_comparison, render_series, render_table
from repro.metrics.series import (
    bin_counts,
    sample_step_series,
    series_peak,
    step_series_at,
    to_step_series,
)


class TestBinCounts:
    def test_basic_binning(self):
        series = bin_counts([0.1, 0.2, 5.1, 12.0], bin_width=5.0, start=0.0, end=15.0)
        assert series == [(0.0, 2), (5.0, 1), (10.0, 1), (15.0, 0)]

    def test_empty_bins_included(self):
        series = bin_counts([0.0], bin_width=1.0, start=0.0, end=3.0)
        assert series == [(0.0, 1), (1.0, 0), (2.0, 0), (3.0, 0)]

    def test_events_outside_window_ignored(self):
        series = bin_counts([-1.0, 0.5, 99.0], bin_width=1.0, start=0.0, end=2.0)
        assert sum(count for _, count in series) == 1

    def test_default_end_covers_all_events(self):
        series = bin_counts([0.0, 9.9], bin_width=5.0)
        assert sum(count for _, count in series) == 2

    def test_empty_times(self):
        series = bin_counts([], bin_width=5.0, start=0.0, end=10.0)
        assert all(count == 0 for _, count in series)

    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            bin_counts([1.0], bin_width=0.0)

    def test_end_before_start(self):
        assert bin_counts([1.0], bin_width=1.0, start=10.0, end=5.0) == []


class TestStepSeries:
    def test_cumulative(self):
        series = to_step_series([(1.0, +1), (2.0, +1), (3.0, -1)])
        assert series == [(1.0, 1), (2.0, 2), (3.0, 1)]

    def test_same_time_deltas_collapse(self):
        series = to_step_series([(1.0, +1), (1.0, +1)])
        assert series == [(1.0, 2)]

    def test_initial_value(self):
        series = to_step_series([(1.0, -1)], initial=5)
        assert series == [(1.0, 4)]

    def test_step_series_at(self):
        series = to_step_series([(1.0, +1), (3.0, +2)])
        assert step_series_at(series, 0.5) == 0
        assert step_series_at(series, 1.0) == 1
        assert step_series_at(series, 2.9) == 1
        assert step_series_at(series, 3.0) == 3
        assert step_series_at(series, 100.0) == 3

    def test_sample_step_series(self):
        series = to_step_series([(1.0, +1), (3.0, +1)])
        samples = sample_step_series(series, 0.0, 4.0, 1.0)
        assert samples == [(0.0, 0), (1.0, 1), (2.0, 1), (3.0, 2), (4.0, 2)]

    def test_sample_bad_step(self):
        with pytest.raises(ConfigurationError):
            sample_step_series([], 0.0, 1.0, 0.0)

    def test_series_peak(self):
        assert series_peak([(0.0, 1), (1.0, 5), (2.0, 3)]) == (1.0, 5)
        assert series_peak([]) == (0.0, 0)


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_floats_formatted(self):
        text = render_table(["x"], [[1.23456]])
        assert "1.2" in text

    def test_render_series_empty(self):
        assert "(empty)" in render_series([], title="empty")

    def test_render_series_bars_scale(self):
        text = render_series([(0.0, 1.0), (1.0, 2.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") * 2 == lines[1].count("#")

    def test_render_series_downsamples(self):
        series = [(float(i), 1.0) for i in range(1000)]
        text = render_series(series, max_points=20)
        assert len(text.splitlines()) == 20

    def test_render_comparison(self):
        text = render_comparison(
            "left", [(1, 10.0), (2, 20.0)], "right", [(1, 11.0), (2, 21.0)]
        )
        assert "left" in text and "right" in text
        assert "10.0" in text and "21.0" in text

"""Unit tests for the intra-file call-graph effect inference
(:mod:`repro.lint.effects`) that powers the semlint pass."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.effects import (
    EMITS_UPDATE,
    MUTATES_RIB,
    READS_CLOCK,
    SCHEDULES_TIMER,
    analyze_effects,
)


def analysis_of(source: str):
    return analyze_effects(ast.parse(textwrap.dedent(source)))


class TestDirectEffects:
    def test_pure_function(self):
        analysis = analysis_of(
            """
            def preference_key(route):
                return (len(route.as_path), route.as_path)
            """
        )
        effects = analysis.function("preference_key")
        assert effects is not None
        assert effects.is_pure
        assert effects.classification == "pure"

    def test_reads_clock(self):
        analysis = analysis_of(
            """
            def stamp(self):
                return self._engine.now
            """
        )
        assert analysis.function("stamp").transitive == {READS_CLOCK}

    def test_schedules_timer_via_engine_and_timer(self):
        analysis = analysis_of(
            """
            def arm(engine, cb):
                engine.schedule_at(10.0, cb)

            def rearm(self, delay):
                self.reuse_timer.reschedule(delay)

            def kick(self, delay):
                self._timer.start(delay)
            """
        )
        for name in ("arm", "rearm", "kick"):
            assert analysis.function(name).transitive == {SCHEDULES_TIMER}, name

    def test_mutates_rib_and_emits_update(self):
        analysis = analysis_of(
            """
            def install(self, route):
                self.loc_rib.set_route("p0", route)

            def announce(self, peer, route):
                self.send(peer, route)
            """
        )
        assert analysis.function("install").transitive == {MUTATES_RIB}
        assert analysis.function("announce").transitive == {EMITS_UPDATE}

    def test_known_api_effect(self):
        # DampingManager.record_update arms reuse timers internally.
        analysis = analysis_of(
            """
            def on_update(self, peer, prefix, kind):
                return self.damping.record_update(peer, prefix, kind)
            """
        )
        assert SCHEDULES_TIMER in analysis.function("on_update").transitive


class TestTransitivePropagation:
    def test_effect_flows_through_module_call(self):
        analysis = analysis_of(
            """
            def leaf(engine, cb):
                engine.schedule(5.0, cb)

            def trunk(engine, cb):
                leaf(engine, cb)

            def root(engine, cb):
                trunk(engine, cb)
            """
        )
        root = analysis.function("root")
        assert root.direct == frozenset()
        assert root.transitive == {SCHEDULES_TIMER}
        assert "trunk" in root.calls

    def test_effect_flows_through_self_call(self):
        analysis = analysis_of(
            """
            class Router:
                def _reselect(self):
                    self.loc_rib.set_route("p0", None)

                def process(self, update):
                    self._reselect()
            """
        )
        process = analysis.function("Router.process")
        assert process.transitive == {MUTATES_RIB}

    def test_recursion_reaches_fixed_point(self):
        analysis = analysis_of(
            """
            def ping(n, engine):
                if n:
                    pong(n - 1, engine)

            def pong(n, engine):
                engine.call_soon(lambda: None)
                ping(n, engine)
            """
        )
        assert analysis.function("ping").transitive == {SCHEDULES_TIMER}
        assert analysis.function("pong").transitive == {SCHEDULES_TIMER}

    def test_self_call_does_not_leak_across_classes(self):
        analysis = analysis_of(
            """
            class Noisy:
                def emit(self):
                    self.send("peer", "route")

            class Quiet:
                def emit(self):
                    return 1

                def caller(self):
                    return self.emit()
            """
        )
        assert analysis.function("Quiet.caller").is_pure
        assert analysis.function("Noisy.emit").transitive == {EMITS_UPDATE}


class TestClosureFolding:
    def test_nested_callback_counts_toward_encloser(self):
        # A closure is created precisely to be scheduled; defining an
        # effectful callback is having the effect.
        analysis = analysis_of(
            """
            def plan(self, route):
                def fire():
                    self.loc_rib.set_route("p0", route)
                return fire
            """
        )
        assert analysis.function("plan").transitive == {MUTATES_RIB}
        assert analysis.function("plan.fire").transitive == {MUTATES_RIB}

    def test_lambda_counts_toward_encloser(self):
        analysis = analysis_of(
            """
            def plan(self, peer, route):
                return lambda: self.send(peer, route)
            """
        )
        assert analysis.function("plan").transitive == {EMITS_UPDATE}


class TestAnalysisContainer:
    def test_iteration_is_sorted_and_len_counts_all(self):
        analysis = analysis_of(
            """
            def b():
                return 1

            def a(engine):
                return engine.now
            """
        )
        names = [f.qualname for f in analysis.iter_functions()]
        assert names == sorted(names)
        assert len(analysis) == 2
        impure = [f.qualname for f in analysis.impure_functions()]
        assert impure == ["a"]

    def test_unknown_function_returns_none(self):
        assert analysis_of("x = 1").function("missing") is None

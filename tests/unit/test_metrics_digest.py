"""Unit tests for run digests and experiment CSV export."""

from __future__ import annotations

import csv

from repro.experiments.base import small_mesh_config, run_point
from repro.experiments.export import export_result, export_series_csv, write_csv
from repro.experiments.table1 import table1_experiment
from repro.metrics.digest import collector_fingerprint_lines, run_digest


class TestDigest:
    def test_same_seed_same_digest(self):
        a = run_point(small_mesh_config(seed=5), pulses=1)
        b = run_point(small_mesh_config(seed=5), pulses=1)
        assert run_digest(a.collector) == run_digest(b.collector)

    def test_different_seed_different_digest(self):
        a = run_point(small_mesh_config(seed=5), pulses=1)
        b = run_point(small_mesh_config(seed=6), pulses=1)
        assert run_digest(a.collector) != run_digest(b.collector)

    def test_different_workload_different_digest(self):
        a = run_point(small_mesh_config(seed=5), pulses=1)
        b = run_point(small_mesh_config(seed=5), pulses=2)
        assert run_digest(a.collector) != run_digest(b.collector)

    def test_fingerprint_covers_all_event_kinds(self):
        result = run_point(small_mesh_config(seed=5), pulses=1)
        lines = collector_fingerprint_lines(result.collector)
        kinds = {line[0] for line in lines}
        assert kinds == {"U", "S", "R"}

    def test_digest_is_hex_sha256(self):
        result = run_point(small_mesh_config(seed=5), pulses=0)
        digest = run_digest(result.collector)
        assert len(digest) == 64
        int(digest, 16)  # parses as hex


class TestExport:
    def test_write_csv(self, tmp_path):
        path = tmp_path / "x.csv"
        write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_export_table_result(self, tmp_path):
        result = table1_experiment()
        written = export_result(result, tmp_path)
        assert (tmp_path / "T1.csv").exists()
        assert written[0].name == "T1.csv"
        with (tmp_path / "T1.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["Damping Parameters", "Cisco", "Juniper"]
        assert len(rows) == 8  # header + 7 parameter rows

    def test_export_sweep_result(self, tmp_path):
        from repro.experiments.fig8_9 import fig8_experiment, run_fig8_9_sweeps

        sweeps = run_fig8_9_sweeps([1], include_internet=False)
        result = fig8_experiment([1], sweeps=sweeps, include_internet=False)
        written = export_result(result, tmp_path)
        names = {path.name for path in written}
        assert "F8.csv" in names
        assert "F8_no_damping_mesh.csv" in names
        assert "F8_full_damping_mesh.csv" in names
        with (tmp_path / "F8_full_damping_mesh.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "pulses"
        assert rows[1][0] == "1"

    def test_export_series(self, tmp_path):
        path = tmp_path / "series.csv"
        export_series_csv(path, [(0.0, 1.0), (5.0, 2.0)], value_name="penalty")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["time_s", "penalty"]
        assert rows[2] == ["5.0", "2.0"]

    def test_export_creates_directories(self, tmp_path):
        nested = tmp_path / "deep" / "dir"
        result = table1_experiment()
        export_result(result, nested)
        assert (nested / "T1.csv").exists()

"""Unit tests for damping parameters (Table 1) and derived quantities."""

from __future__ import annotations

import math

import pytest

from repro.core.params import (
    CISCO_DEFAULTS,
    JUNIPER_DEFAULTS,
    VENDOR_PRESETS,
    DampingParams,
    UpdateKind,
)
from repro.errors import ConfigurationError


def test_cisco_defaults_match_table1():
    assert CISCO_DEFAULTS.withdrawal_penalty == 1000.0
    assert CISCO_DEFAULTS.reannouncement_penalty == 0.0
    assert CISCO_DEFAULTS.attribute_change_penalty == 500.0
    assert CISCO_DEFAULTS.cutoff_threshold == 2000.0
    assert CISCO_DEFAULTS.reuse_threshold == 750.0
    assert CISCO_DEFAULTS.half_life == 15 * 60
    assert CISCO_DEFAULTS.max_hold_down == 60 * 60


def test_juniper_defaults_match_table1():
    assert JUNIPER_DEFAULTS.reannouncement_penalty == 1000.0
    assert JUNIPER_DEFAULTS.cutoff_threshold == 3000.0
    assert JUNIPER_DEFAULTS.withdrawal_penalty == 1000.0
    assert JUNIPER_DEFAULTS.half_life == 15 * 60


def test_vendor_presets_registry():
    assert VENDOR_PRESETS["cisco"] is CISCO_DEFAULTS
    assert VENDOR_PRESETS["juniper"] is JUNIPER_DEFAULTS


def test_decay_constant_is_ln2_over_half_life():
    assert CISCO_DEFAULTS.decay_constant == pytest.approx(
        math.log(2) / (15 * 60)
    )


def test_decay_halves_after_half_life():
    assert CISCO_DEFAULTS.decay(1000.0, 15 * 60) == pytest.approx(500.0)


def test_decay_zero_elapsed_is_identity():
    assert CISCO_DEFAULTS.decay(1234.0, 0.0) == 1234.0


def test_decay_of_zero_penalty():
    assert CISCO_DEFAULTS.decay(0.0, 100.0) == 0.0


def test_decay_negative_elapsed_raises():
    with pytest.raises(ConfigurationError):
        CISCO_DEFAULTS.decay(100.0, -1.0)


def test_penalty_ceiling_enforces_max_hold_down():
    # ceiling = reuse * 2^(hold/half-life) = 750 * 2^4 = 12000
    assert CISCO_DEFAULTS.penalty_ceiling == pytest.approx(12000.0)
    # Decaying the ceiling for max_hold_down seconds lands on the reuse
    # threshold exactly.
    decayed = CISCO_DEFAULTS.decay(
        CISCO_DEFAULTS.penalty_ceiling, CISCO_DEFAULTS.max_hold_down
    )
    assert decayed == pytest.approx(CISCO_DEFAULTS.reuse_threshold)


def test_penalty_increments():
    assert CISCO_DEFAULTS.penalty_increment(UpdateKind.WITHDRAWAL) == 1000.0
    assert CISCO_DEFAULTS.penalty_increment(UpdateKind.REANNOUNCEMENT) == 0.0
    assert CISCO_DEFAULTS.penalty_increment(UpdateKind.ATTRIBUTE_CHANGE) == 500.0
    assert CISCO_DEFAULTS.penalty_increment(UpdateKind.DUPLICATE) == 0.0


def test_time_to_reach_inverts_decay():
    elapsed = CISCO_DEFAULTS.time_to_reach(3000.0, 750.0)
    assert CISCO_DEFAULTS.decay(3000.0, elapsed) == pytest.approx(750.0)
    # 3000 -> 750 is two half-lives
    assert elapsed == pytest.approx(2 * CISCO_DEFAULTS.half_life)


def test_time_to_reach_already_below():
    assert CISCO_DEFAULTS.time_to_reach(500.0, 750.0) == 0.0
    assert CISCO_DEFAULTS.time_to_reach(750.0, 750.0) == 0.0


def test_reuse_delay_from_paper_formula():
    # r = (1/lambda) ln(p / P_reuse)
    p = 2867.0
    expected = math.log(p / 750.0) / CISCO_DEFAULTS.decay_constant
    assert CISCO_DEFAULTS.reuse_delay(p) == pytest.approx(expected)


def test_invalid_half_life():
    with pytest.raises(ConfigurationError):
        DampingParams(half_life=0.0)


def test_invalid_thresholds():
    with pytest.raises(ConfigurationError):
        DampingParams(cutoff_threshold=500.0, reuse_threshold=750.0)
    with pytest.raises(ConfigurationError):
        DampingParams(reuse_threshold=0.0)


def test_negative_penalty_rejected():
    with pytest.raises(ConfigurationError):
        DampingParams(withdrawal_penalty=-1.0)


def test_invalid_max_hold_down():
    with pytest.raises(ConfigurationError):
        DampingParams(max_hold_down=0.0)


def test_with_overrides_creates_validated_copy():
    custom = CISCO_DEFAULTS.with_overrides(cutoff_threshold=2500.0)
    assert custom.cutoff_threshold == 2500.0
    assert custom.withdrawal_penalty == CISCO_DEFAULTS.withdrawal_penalty
    with pytest.raises(ConfigurationError):
        CISCO_DEFAULTS.with_overrides(cutoff_threshold=100.0)


def test_describe_round_trip():
    described = CISCO_DEFAULTS.describe()
    assert described["half_life_minutes"] == 15.0
    assert described["cutoff_threshold"] == 2000.0
    assert described["max_hold_down_minutes"] == 60.0


def test_params_are_immutable():
    with pytest.raises(AttributeError):
        CISCO_DEFAULTS.cutoff_threshold = 1.0  # type: ignore[misc]

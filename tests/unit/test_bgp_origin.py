"""Unit tests for the flapping origin AS."""

from __future__ import annotations

import pytest

from repro.bgp.origin import OriginRouter
from repro.bgp.router import BgpRouter, RouterConfig
from repro.bgp.mrai import MraiConfig
from repro.errors import ConfigurationError
from repro.net.link import LinkConfig
from repro.net.network import Network
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


@pytest.fixture
def setup():
    engine = Engine()
    rng = RngRegistry(4)
    network = Network(engine, rng)
    isp = BgpRouter("isp", engine, rng, config=RouterConfig(mrai=MraiConfig(base=0.0)))
    origin = OriginRouter("originAS", engine, rng, prefix="p0", isp="isp")
    network.add_node(isp)
    network.add_node(origin)
    network.add_link("originAS", "isp", LinkConfig(base_delay=0.001, jitter=0.0))
    return engine, origin, isp


def test_prefix_required():
    engine = Engine()
    rng = RngRegistry(4)
    with pytest.raises(ConfigurationError):
        OriginRouter("o", engine, rng, prefix="", isp="isp")


def test_bring_up_announces_to_isp(setup):
    engine, origin, isp = setup
    cause = origin.bring_up()
    engine.run()
    assert origin.is_up
    assert isp.best_route("p0") is not None
    assert isp.best_route("p0").as_path == ("originAS",)
    assert cause.status == "up"
    assert cause.seq == 1


def test_take_down_withdraws(setup):
    engine, origin, isp = setup
    origin.bring_up()
    engine.run()
    cause = origin.take_down()
    engine.run()
    assert not origin.is_up
    assert isp.best_route("p0") is None
    assert cause.status == "down"
    assert cause.seq == 2


def test_flap_log_and_times(setup):
    engine, origin, isp = setup
    engine.schedule_at(0.0, origin.bring_up)
    engine.schedule_at(10.0, origin.take_down)
    engine.schedule_at(20.0, origin.bring_up)
    engine.run()
    assert [(t, s) for t, s in origin.flap_log] == [
        (0.0, "up"),
        (10.0, "down"),
        (20.0, "up"),
    ]
    assert origin.flap_times == [0.0, 10.0, 20.0]
    assert origin.last_announcement_time == 20.0


def test_last_announcement_time_none_before_any_up(setup):
    _, origin, _ = setup
    assert origin.last_announcement_time is None


def test_causes_are_sequential_and_propagated(setup):
    engine, origin, isp = setup
    origin.bring_up()
    engine.run()
    origin.take_down()
    engine.run()
    entry = isp.rib_in("originAS").entry("p0")
    assert entry.root_cause.seq == 2
    assert entry.root_cause.status == "down"
    assert entry.root_cause.link == ("originAS", "isp")


def test_unstamped_flap(setup):
    engine, origin, isp = setup
    cause = origin.bring_up(stamp_cause=False)
    engine.run()
    assert cause is None
    assert isp.rib_in("originAS").entry("p0").root_cause is None


def test_origin_never_receives_routes_back(setup):
    """All paths to the origin's prefix contain the origin, so the ISP's
    sender-side loop check keeps the origin's inbox empty."""
    engine, origin, isp = setup
    origin.bring_up()
    engine.run()
    assert origin.stats.updates_received == 0


def test_aliases(setup):
    engine, origin, _ = setup
    origin.flap_up()
    engine.run()
    assert origin.is_up
    origin.flap_down()
    engine.run()
    assert not origin.is_up

"""Invalidation tests for the incremental lint cache.

The contract under test: the cache is a *pure accelerator*. Whatever
combination of warm entries, edits, rule-set bumps, call-graph rewires,
or corrupted cache files the engine encounters, the merged report must
be byte-identical (as rendered JSON) to a cold sequential run of the
same tree — the cache may only change *how much work* that takes, which
the hit/miss counters make observable.
"""

from __future__ import annotations

import json
import textwrap

import pytest

import repro.lint.cache as cache_module
from repro.lint import lint_paths, make_config, render_json

#: Nonexistent profile -> every phase hot; heat then depends only on the
#: fixture tree's own call graph (callback registrations), so the tests
#: are independent of the committed benchmark profile.
NO_PROFILE = "/nonexistent/profile.json"

ALPHA_COLD = '''
"""Alpha fixture: plain cross-file caller."""

from repro.beta import helper


def use(value):
    return helper(value)
'''

ALPHA_HOT = '''
"""Alpha fixture: registers beta's helper as an engine callback."""

from repro.beta import helper


def arm(engine):
    engine.schedule(5.0, helper, tag="reuse")
'''

BETA = '''
"""Beta fixture: the formatting hazard lives here."""


def helper(value):
    return f"value {value}"
'''

BETA_EDITED = '''
"""Beta fixture: the formatting hazard lives here."""


def helper(value):
    return f"value {value}"


def extra(value):
    return f"extra {value}"
'''


@pytest.fixture
def tree(tmp_path):
    # The ``repro`` path segment gives the files real module names, so
    # cross-file imports resolve in the project graph.
    pkg = tmp_path / "proj" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "alpha.py").write_text(textwrap.dedent(ALPHA_COLD))
    (pkg / "beta.py").write_text(textwrap.dedent(BETA))
    return tmp_path / "proj"


def config():
    return make_config(passes=("all",), hot_profile=NO_PROFILE)


def run(tree, cache_dir=None, jobs=1):
    report = lint_paths(
        [str(tree)], config(), cache_dir=str(cache_dir) if cache_dir else None,
        jobs=jobs,
    )
    return report


def stats(report):
    assert report.cache_stats is not None
    return report.cache_stats


class TestWarmRuns:
    def test_cold_then_warm_is_byte_identical(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run(tree, cache_dir)
        assert stats(cold) == {
            "local_hits": 0,
            "local_misses": 2,
            "perf_hits": 0,
            "perf_misses": 2,
        }
        warm = run(tree, cache_dir)
        assert stats(warm) == {
            "local_hits": 2,
            "local_misses": 0,
            "perf_hits": 2,
            "perf_misses": 0,
        }
        assert render_json(warm) == render_json(cold)

    def test_cache_stats_absent_without_cache_dir(self, tree):
        report = run(tree)
        assert report.cache_stats is None

    def test_parallel_warm_run_matches_sequential(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run(tree, cache_dir)
        warm = run(tree, cache_dir, jobs=4)
        assert render_json(warm) == render_json(cold)


class TestEditOneFile:
    def test_only_edited_file_reanalyzed(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        run(tree, cache_dir)
        (tree / "repro" / "beta.py").write_text(textwrap.dedent(BETA_EDITED))
        warm = run(tree, cache_dir)
        # alpha: local + perf both cached; beta: both re-run (its source
        # digest changed, which also invalidates its perf entry).
        assert stats(warm) == {
            "local_hits": 1,
            "local_misses": 1,
            "perf_hits": 1,
            "perf_misses": 1,
        }
        fresh = run(tree, tmp_path / "fresh_cache")
        assert render_json(warm) == render_json(fresh)


class TestCallGraphInvalidation:
    def test_edge_change_reruns_other_files_perf_pass(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run(tree, cache_dir)
        severities = {
            f.severity for f in cold.findings if f.rule_id == "PERF004"
        }
        assert severities == {"info"}  # nothing is hot yet

        # Rewire alpha: registering beta.helper as an engine callback
        # pulls it into the hot set, so *beta's* hot slice changes even
        # though beta's source did not.
        (tree / "repro" / "alpha.py").write_text(textwrap.dedent(ALPHA_HOT))
        warm = run(tree, cache_dir)
        assert stats(warm) == {
            "local_hits": 1,      # beta's local passes stay cached
            "local_misses": 1,    # alpha was edited
            "perf_hits": 0,
            "perf_misses": 2,     # both hot slices changed
        }
        beta_findings = [
            f
            for f in warm.findings
            if f.rule_id == "PERF004" and f.path.endswith("beta.py")
        ]
        assert beta_findings and all(
            f.severity == "warning" for f in beta_findings
        )
        fresh = run(tree, tmp_path / "fresh_cache")
        assert render_json(warm) == render_json(fresh)

    def test_unrelated_edit_keeps_perf_entries(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        run(tree, cache_dir)
        # A comment-only edit to alpha leaves every call-graph summary
        # and hot slice intact: beta must not be re-analysed at all.
        alpha = tree / "repro" / "alpha.py"
        alpha.write_text(alpha.read_text() + "\n# trailing comment\n")
        warm = run(tree, cache_dir)
        assert stats(warm) == {
            "local_hits": 1,
            "local_misses": 1,
            "perf_hits": 1,
            "perf_misses": 1,  # alpha's own sha changed
        }


class TestRuleSetVersion:
    def test_version_bump_invalidates_everything(self, tree, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        cold = run(tree, cache_dir)
        monkeypatch.setattr(cache_module, "RULE_SET_VERSION", 999)
        bumped = run(tree, cache_dir)
        assert stats(bumped) == {
            "local_hits": 0,
            "local_misses": 2,
            "perf_hits": 0,
            "perf_misses": 2,
        }
        assert render_json(bumped) == render_json(cold)

    def test_config_change_never_aliases_entries(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        run(tree, cache_dir)
        narrowed = make_config(passes=("perf",), hot_profile=NO_PROFILE)
        report = lint_paths([str(tree)], narrowed, cache_dir=str(cache_dir))
        # Different config digest -> the previous entries are invisible.
        assert stats(report)["local_misses"] == 2
        assert {f.rule_id[:4] for f in report.findings} <= {"PERF"}


class TestCorruptCache:
    def test_corrupt_cache_file_treated_as_empty(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run(tree, cache_dir)
        (cache_dir / cache_module.CACHE_FILENAME).write_text("{not json")
        warm = run(tree, cache_dir)
        assert stats(warm) == {
            "local_hits": 0,
            "local_misses": 2,
            "perf_hits": 0,
            "perf_misses": 2,
        }
        assert render_json(warm) == render_json(cold)

    def test_stale_entry_forces_reanalysis_of_that_file_only(
        self, tree, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        cold = run(tree, cache_dir)
        cache_file = cache_dir / cache_module.CACHE_FILENAME
        payload = json.loads(cache_file.read_text())
        beta_key = next(k for k in payload["files"] if k.endswith("beta.py"))
        payload["files"][beta_key]["sha"] = "0" * 64
        cache_file.write_text(json.dumps(payload))
        warm = run(tree, cache_dir)
        assert stats(warm)["local_misses"] == 1
        assert stats(warm)["local_hits"] == 1
        assert render_json(warm) == render_json(cold)

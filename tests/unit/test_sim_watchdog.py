"""Unit tests for the engine watchdog and stall diagnostics."""

from __future__ import annotations

import pytest

from repro.errors import SimulationStalled
from repro.sim.engine import Engine
from repro.sim.watchdog import Watchdog, stall_diagnostics


def _wedge(engine: Engine) -> None:
    """A zero-delay self-rescheduling event: the classic frozen clock."""

    def spin() -> None:
        engine.schedule_at(engine.now, spin, actor="wedge", tag="spin")

    engine.schedule_at(1.0, spin, actor="wedge", tag="spin")


def test_watchdog_rejects_nonpositive_threshold(engine):
    with pytest.raises(ValueError):
        Watchdog(engine, max_events_per_instant=0)


def test_watchdog_trips_on_frozen_clock():
    engine = Engine()
    engine.enable_watchdog(max_events_per_instant=100)
    _wedge(engine)
    with pytest.raises(SimulationStalled) as excinfo:
        engine.run_until_idle(max_time=10.0)
    assert engine.now == pytest.approx(1.0)
    diagnostics = excinfo.value.diagnostics
    assert diagnostics is not None
    assert diagnostics.events_at_instant == 101
    assert diagnostics.now == pytest.approx(1.0)
    # The wedge trips before re-arming itself, so the queue sample can
    # be empty — the culprit field still names the spinning event.
    assert diagnostics.culprit == ("wedge", "spin")
    assert "wedge" in str(excinfo.value)


def test_watchdog_reports_pending_timer_inventory():
    from repro.sim.timers import Timer

    engine = Engine()
    engine.enable_timer_audit()
    engine.enable_watchdog(max_events_per_instant=50)
    timer = Timer(engine, lambda: None, name="reuse:r1:p0", actor="r1", tag="reuse")
    timer.start(500.0)
    _wedge(engine)
    with pytest.raises(SimulationStalled) as excinfo:
        engine.run_until_idle(max_time=10.0)
    diagnostics = excinfo.value.diagnostics
    assert diagnostics.pending_timers is not None
    assert any("reuse:r1:p0" in label for label in diagnostics.pending_timers)
    assert "reuse:r1:p0" in diagnostics.describe()


def test_watchdog_tolerates_bursts_below_threshold():
    engine = Engine()
    engine.enable_watchdog(max_events_per_instant=100)
    fired = []
    for index in range(90):
        engine.schedule_at(2.0, lambda i=index: fired.append(i), actor="burst")
    engine.run_until_idle(max_time=10.0)
    assert len(fired) == 90


def test_watchdog_resets_count_when_clock_advances():
    engine = Engine()
    engine.enable_watchdog(max_events_per_instant=10)
    fired = []
    # 8 events at each of many distinct instants: never trips.
    for step in range(20):
        for _ in range(8):
            engine.schedule_at(1.0 + step, lambda: fired.append(1), actor="ok")
    engine.run_until_idle(max_time=100.0)
    assert len(fired) == 160


def test_stall_diagnostics_without_audit_says_so():
    engine = Engine()
    engine.schedule_at(5.0, lambda: None, actor="a", tag="t")
    diagnostics = stall_diagnostics(engine)
    assert diagnostics.pending_timers is None
    assert "no timer audit attached" in diagnostics.describe()
    assert diagnostics.pending_count == 1


def test_enable_watchdog_is_idempotent():
    engine = Engine()
    first = engine.enable_watchdog()
    assert engine.enable_watchdog() is first
    assert engine.watchdog is first

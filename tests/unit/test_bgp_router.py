"""Unit tests for the BgpRouter update pipeline."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.bgp.messages import UpdateMessage
from repro.bgp.mrai import MraiConfig
from repro.bgp.router import BgpRouter, RouterConfig
from repro.core.params import CISCO_DEFAULTS
from repro.core.rcn import RootCause
from repro.net.link import LinkConfig
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class PeerStub(Node):
    """Scripted peer: records updates received from the router under test."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.updates: List[UpdateMessage] = []

    def handle_message(self, message: Message) -> None:
        self.updates.append(message.payload)

    def announce(self, prefix: str, path: Tuple[str, ...],
                 cause: Optional[RootCause] = None) -> None:
        self.send("R", UpdateMessage(prefix=prefix, as_path=path, root_cause=cause))

    def withdraw(self, prefix: str, cause: Optional[RootCause] = None) -> None:
        self.send("R", UpdateMessage(prefix=prefix, as_path=None, root_cause=cause))


class Harness:
    def __init__(self, config: Optional[RouterConfig] = None, peers=("A", "B", "C")):
        self.engine = Engine()
        self.rng = RngRegistry(9)
        self.network = Network(self.engine, self.rng)
        self.router = BgpRouter(
            "R",
            self.engine,
            self.rng,
            config=config or RouterConfig(mrai=MraiConfig(base=0.0)),
        )
        self.network.add_node(self.router)
        self.peers = {}
        for name in peers:
            peer = PeerStub(name)
            self.network.add_node(peer)
            self.network.add_link("R", name, LinkConfig(base_delay=0.001, jitter=0.0))
            self.peers[name] = peer

    def run(self) -> None:
        """Advance one second of simulated time — enough for message
        propagation, but without letting reuse timers (minutes away)
        fire. Tests that want timers to fire call ``engine.run()``."""
        self.engine.run(until=self.engine.now + 1.0)


@pytest.fixture
def harness():
    return Harness()


def damped_harness(**kwargs) -> Harness:
    config = RouterConfig(damping=CISCO_DEFAULTS, mrai=MraiConfig(base=0.0), **kwargs)
    return Harness(config=config)


def test_first_announcement_installs_and_propagates(harness):
    harness.peers["A"].announce("p0", ("A", "origin"))
    harness.run()
    best = harness.router.best_route("p0")
    assert best is not None
    assert best.as_path == ("A", "origin")
    # Propagated to B and C with R prepended, not back to A.
    for name in ("B", "C"):
        updates = harness.peers[name].updates
        assert len(updates) == 1
        assert updates[0].as_path == ("R", "A", "origin")
    assert harness.peers["A"].updates == []


def test_withdrawal_propagates(harness):
    harness.peers["A"].announce("p0", ("A", "origin"))
    harness.run()
    harness.peers["A"].withdraw("p0")
    harness.run()
    assert harness.router.best_route("p0") is None
    assert harness.peers["B"].updates[-1].is_withdrawal


def test_duplicate_announcement_ignored(harness):
    harness.peers["A"].announce("p0", ("A", "origin"))
    harness.run()
    harness.peers["A"].announce("p0", ("A", "origin"))
    harness.run()
    assert harness.router.stats.duplicates_ignored == 1
    assert len(harness.peers["B"].updates) == 1


def test_switch_to_shorter_path(harness):
    harness.peers["A"].announce("p0", ("A", "x", "origin"))
    harness.run()
    harness.peers["B"].announce("p0", ("B", "origin"))
    harness.run()
    best = harness.router.best_route("p0")
    assert best.as_path == ("B", "origin")
    # C saw both selections.
    assert [u.as_path for u in harness.peers["C"].updates] == [
        ("R", "A", "x", "origin"),
        ("R", "B", "origin"),
    ]
    # B first heard the A-path; once R routes via B, R withdraws from B
    # (sender-side loop prevention) rather than echoing B's own route.
    assert len(harness.peers["B"].updates) == 2
    assert harness.peers["B"].updates[-1].is_withdrawal


def test_fallback_to_alternate_on_withdrawal(harness):
    harness.peers["A"].announce("p0", ("A", "origin"))
    harness.peers["B"].announce("p0", ("B", "y", "origin"))
    harness.run()
    harness.peers["A"].withdraw("p0")
    harness.run()
    assert harness.router.best_route("p0").as_path == ("B", "y", "origin")
    # This is path exploration: C heard A's path, then B's worse path.
    assert [u.as_path for u in harness.peers["C"].updates] == [
        ("R", "A", "origin"),
        ("R", "B", "y", "origin"),
    ]


def test_looped_announcement_dropped(harness):
    harness.peers["A"].announce("p0", ("A", "R", "origin"))
    harness.run()
    assert harness.router.best_route("p0") is None


def test_withdrawal_for_unknown_prefix_ignored(harness):
    harness.peers["A"].withdraw("p-unknown")
    harness.run()
    assert harness.router.best_route("p-unknown") is None
    assert harness.peers["B"].updates == []


def test_origination_announces_everywhere(harness):
    harness.router.originate("mine")
    harness.run()
    for name in ("A", "B", "C"):
        assert harness.peers[name].updates[0].as_path == ("R",)
    assert harness.router.originates("mine")


def test_self_originated_route_preferred(harness):
    harness.peers["A"].announce("mine", ("A", "origin"))
    harness.run()
    harness.router.originate("mine")
    harness.run()
    assert harness.router.best_route("mine").as_path == ("R",)


def test_withdraw_origination(harness):
    harness.router.originate("mine")
    harness.run()
    harness.router.withdraw_origination("mine")
    harness.run()
    assert harness.peers["A"].updates[-1].is_withdrawal
    assert not harness.router.originates("mine")


def test_stats_counters(harness):
    harness.peers["A"].announce("p0", ("A", "origin"))
    harness.run()
    harness.peers["A"].withdraw("p0")
    harness.run()
    stats = harness.router.stats
    assert stats.updates_received == 2
    assert stats.announcements_received == 1
    assert stats.withdrawals_received == 1
    assert stats.best_path_changes == 2


# ----------------------------------------------------------------------
# damping behaviour
# ----------------------------------------------------------------------


def test_three_withdrawals_suppress_entry():
    harness = damped_harness()
    peer = harness.peers["A"]
    for _ in range(3):
        peer.announce("p0", ("A", "origin"))
        harness.run()
        peer.withdraw("p0")
        harness.run()
    assert harness.router.damping.is_suppressed("A", "p0")


def test_suppressed_route_excluded_from_selection():
    harness = damped_harness()
    harness.peers["B"].announce("p0", ("B", "x", "y", "origin"))
    harness.run()
    peer = harness.peers["A"]
    for _ in range(3):
        peer.announce("p0", ("A", "origin"))
        harness.run()
        peer.withdraw("p0")
        harness.run()
    peer.announce("p0", ("A", "origin"))
    harness.run()
    # A's (shorter) route is suppressed, so the longer B route wins.
    assert harness.router.best_route("p0").as_path == ("B", "x", "y", "origin")


def test_noisy_reuse_reselects_and_announces():
    harness = damped_harness()
    harness.peers["B"].announce("p0", ("B", "x", "y", "origin"))
    harness.run()
    peer = harness.peers["A"]
    for _ in range(3):
        peer.announce("p0", ("A", "origin"))
        harness.run()
        peer.withdraw("p0")
        harness.run()
    peer.announce("p0", ("A", "origin"))
    harness.run()
    before = len(harness.peers["C"].updates)
    harness.engine.run()  # let the reuse timer fire
    assert harness.router.best_route("p0").as_path == ("A", "origin")
    assert harness.router.damping.reuse_events[-1].noisy is True
    assert len(harness.peers["C"].updates) > before


def test_silent_reuse_when_route_withdrawn():
    harness = damped_harness()
    peer = harness.peers["A"]
    for _ in range(3):
        peer.announce("p0", ("A", "origin"))
        harness.run()
        peer.withdraw("p0")
        harness.run()
    assert harness.router.damping.is_suppressed("A", "p0")
    sent_before = len(harness.peers["B"].updates)
    harness.engine.run()  # reuse fires; entry is withdrawn -> silent
    assert harness.router.damping.reuse_events[-1].noisy is False
    assert len(harness.peers["B"].updates) == sent_before


def test_attribute_changes_charge_penalty():
    harness = damped_harness()
    peer = harness.peers["A"]
    peer.announce("p0", ("A", "origin"))
    harness.run()
    peer.announce("p0", ("A", "x", "origin"))
    harness.run()
    assert harness.router.damping.penalty_value("A", "p0") == pytest.approx(
        500.0, rel=0.01
    )


def test_reset_damping_clears_penalties():
    harness = damped_harness()
    peer = harness.peers["A"]
    peer.announce("p0", ("A", "origin"))
    harness.run()
    peer.withdraw("p0")
    harness.run()
    assert harness.router.damping.penalty_value("A", "p0") > 0
    harness.router.reset_damping()
    assert harness.router.damping.penalty_value("A", "p0") == 0.0
    assert harness.router.suppressed_entry_count() == 0


# ----------------------------------------------------------------------
# RCN behaviour
# ----------------------------------------------------------------------


def rc(seq: int, status: str = "down") -> RootCause:
    return RootCause(link=("origin", "isp"), status=status, seq=seq)


def rcn_harness() -> Harness:
    return Harness(
        config=RouterConfig(
            damping=CISCO_DEFAULTS, rcn_enabled=True, mrai=MraiConfig(base=0.0)
        )
    )


def test_rcn_same_cause_charges_once():
    harness = rcn_harness()
    peer = harness.peers["A"]
    peer.announce("p0", ("A", "origin"), cause=rc(1, "up"))
    harness.run()
    # Three different-looking updates, all caused by the same flap.
    peer.withdraw("p0", cause=rc(2, "down"))
    harness.run()
    peer.announce("p0", ("A", "x", "origin"), cause=rc(2, "down"))
    harness.run()
    peer.withdraw("p0", cause=rc(2, "down"))
    harness.run()
    # Only the first update with cause seq=2 charged (down -> +1000).
    assert harness.router.damping.penalty_value("A", "p0") == pytest.approx(
        1000.0, rel=0.01
    )


def test_rcn_charges_by_flap_type_not_update_kind():
    """An 'up' cause carried by an attribute change charges the
    re-announcement penalty (0 for Cisco), not the attribute penalty."""
    harness = rcn_harness()
    peer = harness.peers["A"]
    peer.announce("p0", ("A", "origin"), cause=rc(1, "up"))
    harness.run()
    peer.announce("p0", ("A", "x", "origin"), cause=rc(2, "up"))
    harness.run()
    assert harness.router.damping.penalty_value("A", "p0") == 0.0


def test_rcn_outgoing_updates_carry_cause():
    harness = rcn_harness()
    cause = rc(5, "up")
    harness.peers["A"].announce("p0", ("A", "origin"), cause=cause)
    harness.run()
    forwarded = harness.peers["B"].updates[0]
    assert forwarded.root_cause == cause


def test_plain_router_propagates_cause_without_using_it():
    harness = damped_harness()  # rcn_enabled=False
    cause = rc(1, "down")
    harness.peers["A"].announce("p0", ("A", "origin"))
    harness.run()
    harness.peers["A"].withdraw("p0", cause=cause)
    harness.run()
    assert harness.peers["B"].updates[-1].root_cause == cause
    # Plain damping still charged the withdrawal.
    assert harness.router.damping.penalty_value("A", "p0") == pytest.approx(
        1000.0, rel=0.01
    )


# ----------------------------------------------------------------------
# MRAI behaviour
# ----------------------------------------------------------------------


def test_mrai_rate_limits_announcements():
    harness = Harness(config=RouterConfig(mrai=MraiConfig(base=30.0)))
    a = harness.peers["A"]
    a.announce("p0", ("A", "x", "y", "origin"))
    harness.engine.run(until=1.0)
    assert len(harness.peers["C"].updates) == 1
    # A better path arrives immediately: the announcement must wait for
    # the MRAI timer.
    a.announce("p0", ("A", "origin"))
    harness.engine.run(until=2.0)
    assert len(harness.peers["C"].updates) == 1
    harness.engine.run(until=60.0)
    assert len(harness.peers["C"].updates) == 2
    assert harness.peers["C"].updates[-1].as_path == ("R", "A", "origin")


def test_mrai_withdrawals_bypass_by_default():
    harness = Harness(config=RouterConfig(mrai=MraiConfig(base=30.0)))
    a = harness.peers["A"]
    a.announce("p0", ("A", "origin"))
    harness.engine.run(until=1.0)
    a.withdraw("p0")
    harness.engine.run(until=2.0)
    assert harness.peers["C"].updates[-1].is_withdrawal


def test_mrai_flush_skips_stale_changes():
    """If the best path flaps back to the already-announced route before
    the MRAI expires, nothing extra is sent."""
    harness = Harness(config=RouterConfig(mrai=MraiConfig(base=30.0)))
    a = harness.peers["A"]
    a.announce("p0", ("A", "origin"))
    harness.engine.run(until=1.0)
    a.announce("p0", ("A", "x", "origin"))
    harness.engine.run(until=2.0)
    a.announce("p0", ("A", "origin"))
    harness.engine.run()  # MRAI fires; rib-out already matches
    announcements = [u for u in harness.peers["C"].updates if u.is_announcement]
    assert [u.as_path for u in announcements] == [("R", "A", "origin")]

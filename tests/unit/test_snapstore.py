"""Unit tests for the content-addressed snapshot transport.

Publisher and fetcher run in one process here — the transports are
plain OS objects (shared-memory segments, spill files), so attach/read
semantics are identical to the cross-process case, minus the spawn.
"""

from __future__ import annotations

import os

import pytest

import repro.experiments.snapstore as snapstore
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.snapstore import (
    SnapshotHandle,
    SnapshotPublisher,
    blob_digest,
    fetch_blob,
    publish_snapshot,
    resolve_transport,
)

BLOB = b"warm-state-bytes" * 1000


@pytest.fixture(autouse=True)
def _clean_transport_state():
    snapstore.reset_transport_state()
    yield
    snapstore.reset_transport_state()


def test_resolve_transport_rejects_unknown_names():
    with pytest.raises(ConfigurationError, match="snapshot_transport"):
        resolve_transport("carrier-pigeon")


def test_resolve_auto_never_returns_auto_or_inline():
    assert resolve_transport("auto") in ("shm", "spill")


@pytest.mark.parametrize("transport", ["shm", "spill", "inline"])
def test_publish_fetch_roundtrip(transport):
    handle = publish_snapshot(BLOB, transport)
    assert handle.digest == blob_digest(BLOB)
    assert handle.size == len(BLOB)
    assert fetch_blob(handle) == BLOB


def test_publish_is_idempotent_per_digest():
    first = publish_snapshot(BLOB, "spill")
    second = publish_snapshot(BLOB, "spill")
    assert first is second
    # A different blob gets its own key.
    other = publish_snapshot(b"other", "spill")
    assert other.key != first.key


def test_fetch_is_cached_per_digest(tmp_path):
    handle = publish_snapshot(BLOB, "spill")
    assert fetch_blob(handle) == BLOB
    # Delete the backing file: a second fetch must be served from the
    # worker-local cache without touching the transport again.
    os.remove(handle.key)
    assert fetch_blob(handle) == BLOB


def test_corrupted_spill_file_raises_loudly():
    handle = publish_snapshot(BLOB, "spill")
    with open(handle.key, "wb") as stream:
        stream.write(b"trashed")
    with pytest.raises(SimulationError, match="snapshot transport corrupted"):
        fetch_blob(handle)


def test_inline_handle_without_payload_raises():
    bogus = SnapshotHandle("inline", "", 3, blob_digest(b"abc"), payload=None)
    with pytest.raises(SimulationError, match="no payload"):
        fetch_blob(bogus)


def test_unknown_kind_raises():
    bogus = SnapshotHandle("telepathy", "k", 3, blob_digest(b"abc"))
    with pytest.raises(SimulationError, match="unknown snapshot transport"):
        fetch_blob(bogus)


def test_publisher_close_removes_spill_directory():
    publisher = SnapshotPublisher()
    handle = publisher.publish(BLOB, "spill")
    spill_dir = os.path.dirname(handle.key)
    assert os.path.exists(handle.key)
    publisher.close()
    assert not os.path.exists(spill_dir)


def test_shm_falls_back_to_spill_when_unavailable(monkeypatch):
    monkeypatch.setattr(snapstore, "_shared_memory", None)
    publisher = SnapshotPublisher()
    handle = publisher.publish(BLOB, "shm")
    assert handle.kind == "spill"
    assert fetch_blob(handle) == BLOB
    publisher.close()


def test_fetch_cache_is_bounded():
    handles = [
        publish_snapshot(f"blob-{i}".encode() * 500, "spill")
        for i in range(snapstore._FETCH_CACHE_MAX + 2)
    ]
    for handle in handles:
        fetch_blob(handle)
    assert len(snapstore._FETCH_CACHE) == snapstore._FETCH_CACHE_MAX
    # The newest digests survive; the oldest were evicted.
    assert handles[-1].digest in snapstore._FETCH_CACHE
    assert handles[0].digest not in snapstore._FETCH_CACHE

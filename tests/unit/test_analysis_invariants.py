"""Unit tests for the public invariant checker."""

from __future__ import annotations

import pytest

from repro.analysis.invariants import (
    InvariantReport,
    InvariantViolation,
    check_converged_invariants,
)
from repro.core.params import CISCO_DEFAULTS
from repro.errors import SimulationError
from repro.topology.mesh import mesh_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def drained_scenario():
    config = ScenarioConfig(topology=mesh_topology(4, 4), damping=CISCO_DEFAULTS, seed=8)
    scenario = Scenario(config)
    scenario.warm_up()
    scenario.run(PulseSchedule.regular(1, 60.0))
    return scenario


def test_clean_run_passes(drained_scenario):
    report = check_converged_invariants(drained_scenario)
    assert report.ok
    assert report.routers_checked == 16
    report.raise_on_violation()  # must not raise


def test_detects_missing_route(drained_scenario):
    prefix = drained_scenario.config.prefix
    victim = next(iter(drained_scenario.routers.values()))
    saved = victim.loc_rib.route(prefix)
    try:
        victim.loc_rib.set_route(prefix, None)
        report = check_converged_invariants(drained_scenario)
        assert not report.ok
        assert any(v.invariant == "reachability" for v in report.violations)
        with pytest.raises(SimulationError):
            report.raise_on_violation()
    finally:
        victim.loc_rib.set_route(prefix, saved)


def test_detects_decision_inconsistency(drained_scenario):
    from repro.bgp.attrs import Route

    prefix = drained_scenario.config.prefix
    victim = next(iter(drained_scenario.routers.values()))
    saved = victim.loc_rib.route(prefix)
    neighbor = victim.neighbors[0]
    bogus = Route(
        prefix=prefix,
        as_path=(neighbor, "originAS"),
        learned_from=neighbor,
    )
    try:
        victim.loc_rib.set_route(prefix, bogus)
        report = check_converged_invariants(drained_scenario)
        assert any(
            v.invariant in ("decision-consistency", "realisability")
            for v in report.violations
        )
    finally:
        victim.loc_rib.set_route(prefix, saved)


def test_detects_phantom_hop(drained_scenario):
    from repro.bgp.attrs import Route

    prefix = drained_scenario.config.prefix
    victim = next(iter(drained_scenario.routers.values()))
    saved = victim.loc_rib.route(prefix)
    bogus = Route(prefix=prefix, as_path=("nowhere", "originAS"), learned_from="nowhere")
    try:
        victim.loc_rib.set_route(prefix, bogus)
        report = check_converged_invariants(drained_scenario)
        assert any(v.invariant == "realisability" for v in report.violations)
    finally:
        victim.loc_rib.set_route(prefix, saved)


def test_expect_reachable_false_allows_withdrawn_state():
    """After a final 'down', unreachability is the correct converged
    state and must not be flagged."""
    config = ScenarioConfig(topology=mesh_topology(3, 3), damping=None, seed=2)
    scenario = Scenario(config)
    scenario.warm_up()
    # Drive a custom schedule ending 'up', then withdraw manually and
    # drain so the network converges to all-withdrawn.
    scenario.run(PulseSchedule.regular(1, 60.0))
    scenario.origin.take_down()
    scenario.engine.run()
    report = check_converged_invariants(scenario, expect_reachable=False)
    assert report.ok
    strict = check_converged_invariants(scenario, expect_reachable=True)
    assert not strict.ok


def test_violation_str():
    violation = InvariantViolation("r1", "loop-freedom", "self in path")
    assert "r1" in str(violation)
    assert "loop-freedom" in str(violation)


def test_empty_report_ok():
    report = InvariantReport()
    assert report.ok
    report.raise_on_violation()

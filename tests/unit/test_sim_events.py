"""Unit tests for the structured event trace."""

from __future__ import annotations

import pytest

from repro.sim.events import EventTrace


def test_record_and_len():
    trace = EventTrace()
    trace.record(1.0, "update", node="a")
    trace.record(2.0, "suppress", node="b", peer="c")
    assert len(trace) == 2


def test_records_preserve_data():
    trace = EventTrace()
    rec = trace.record(1.0, "update", node="a", size=3)
    assert rec.data == {"size": 3}
    assert rec.node == "a"
    assert rec.kind == "update"


def test_out_of_order_append_raises():
    trace = EventTrace()
    trace.record(5.0, "update")
    with pytest.raises(ValueError):
        trace.record(4.0, "update")


def test_equal_time_append_allowed():
    trace = EventTrace()
    trace.record(5.0, "a")
    trace.record(5.0, "b")
    assert len(trace) == 2


def test_of_kind_filters():
    trace = EventTrace()
    trace.record(1.0, "update")
    trace.record(2.0, "suppress")
    trace.record(3.0, "update")
    assert [r.time for r in trace.of_kind("update")] == [1.0, 3.0]


def test_of_kind_multiple_kinds():
    trace = EventTrace()
    trace.record(1.0, "a")
    trace.record(2.0, "b")
    trace.record(3.0, "c")
    assert [r.kind for r in trace.of_kind("a", "c")] == ["a", "c"]


def test_times_of_kind():
    trace = EventTrace()
    trace.record(1.5, "x")
    trace.record(2.5, "x")
    assert trace.times_of_kind("x") == [1.5, 2.5]


def test_last_time_of_kind():
    trace = EventTrace()
    trace.record(1.0, "x")
    trace.record(2.0, "y")
    trace.record(3.0, "x")
    assert trace.last_time_of_kind("x") == 3.0
    assert trace.last_time_of_kind("missing") is None


def test_window():
    trace = EventTrace()
    for t in (1.0, 2.0, 3.0, 4.0):
        trace.record(t, "x")
    assert [r.time for r in trace.window(2.0, 4.0)] == [2.0, 3.0]


def test_span():
    trace = EventTrace()
    assert trace.span() == (0.0, 0.0)
    trace.record(1.0, "x")
    trace.record(9.0, "x")
    assert trace.span() == (1.0, 9.0)


def test_iteration_in_order():
    trace = EventTrace()
    trace.record(1.0, "a")
    trace.record(2.0, "b")
    assert [r.kind for r in trace] == ["a", "b"]

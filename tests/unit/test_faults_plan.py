"""Unit tests for declarative fault plans: validation and JSON round-trip."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultPlan,
    FlapStorm,
    LinkFault,
    LinkImpairment,
    RouterCrash,
    SessionReset,
)


def _full_plan() -> FaultPlan:
    return FaultPlan(
        name="demo",
        link_faults=(LinkFault(a="r1", b="r2", down_at=10.0, up_at=20.0),),
        crashes=(RouterCrash(router="r3", at=5.0, down_for=30.0),),
        session_resets=(SessionReset(a="r1", b="r3", at=15.0),),
        impairments=(
            LinkImpairment(a="r2", b="r3", start=0.0, duration=50.0, loss=0.1),
        ),
        storms=(
            FlapStorm(
                name="s0",
                links=(("r1", "r2"),),
                start=100.0,
                flaps=3,
                min_interval=5.0,
                max_interval=10.0,
                down_time=2.0,
            ),
        ),
    )


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------


def test_link_fault_up_must_follow_down():
    with pytest.raises(ConfigurationError):
        LinkFault(a="r1", b="r2", down_at=10.0, up_at=10.0)


def test_negative_times_rejected():
    with pytest.raises(ConfigurationError):
        RouterCrash(router="r1", at=-1.0)
    with pytest.raises(ConfigurationError):
        SessionReset(a="r1", b="r2", at=-0.5)


def test_crash_down_for_must_be_positive():
    with pytest.raises(ConfigurationError):
        RouterCrash(router="r1", at=0.0, down_for=0.0)


def test_impairment_rates_bounded():
    with pytest.raises(ConfigurationError):
        LinkImpairment(a="r1", b="r2", start=0.0, loss=1.5)
    with pytest.raises(ConfigurationError):
        LinkImpairment(a="r1", b="r2", start=0.0, duplicate=-0.1)


def test_impairment_must_impair_something():
    with pytest.raises(ConfigurationError):
        LinkImpairment(a="r1", b="r2", start=0.0)


def test_storm_needs_links_and_positive_flaps():
    with pytest.raises(ConfigurationError):
        FlapStorm(
            name="s",
            links=(),
            start=0.0,
            flaps=1,
            min_interval=1.0,
            max_interval=2.0,
            down_time=1.0,
        )
    with pytest.raises(ConfigurationError):
        FlapStorm(
            name="s",
            links=(("a", "b"),),
            start=0.0,
            flaps=0,
            min_interval=1.0,
            max_interval=2.0,
            down_time=1.0,
        )


def test_storm_interval_ordering():
    with pytest.raises(ConfigurationError):
        FlapStorm(
            name="s",
            links=(("a", "b"),),
            start=0.0,
            flaps=1,
            min_interval=5.0,
            max_interval=1.0,
            down_time=1.0,
        )


def test_storm_stream_name_is_derived_from_storm_name():
    storm = _full_plan().storms[0]
    assert storm.stream_name == "fault:storm:s0"


def test_duplicate_storm_names_rejected():
    storm = _full_plan().storms[0]
    with pytest.raises(ConfigurationError):
        FaultPlan(storms=(storm, storm))


# ----------------------------------------------------------------------
# plan-level inspection
# ----------------------------------------------------------------------


def test_empty_plan_is_empty():
    plan = FaultPlan()
    assert plan.is_empty
    assert plan.action_count == 0
    assert plan.routers() == set()
    assert plan.links() == set()


def test_routers_and_links_cover_every_fault_kind():
    plan = _full_plan()
    assert plan.routers() == {"r1", "r2", "r3"}
    assert plan.links() == {("r1", "r2"), ("r1", "r3"), ("r2", "r3")}
    assert plan.action_count == 5
    assert not plan.is_empty


def test_links_are_order_normalised():
    plan = FaultPlan(link_faults=(LinkFault(a="z9", b="a1", down_at=1.0),))
    assert plan.links() == {("a1", "z9")}


def test_plan_is_hashable_and_comparable():
    # The plan participates in the warm-state cache key, so value
    # semantics matter: equal plans must hash equal.
    assert _full_plan() == _full_plan()
    assert hash(_full_plan()) == hash(_full_plan())


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------


def test_json_round_trip_preserves_plan():
    plan = _full_plan()
    assert FaultPlan.loads(plan.dumps()) == plan


def test_dumps_omits_empty_sections():
    text = FaultPlan(name="mini").dumps()
    assert "link_faults" not in text
    assert "storms" not in text


def test_loads_rejects_unknown_keys():
    with pytest.raises(ConfigurationError, match="unknown fault plan keys"):
        FaultPlan.loads('{"name": "x", "quakes": []}')


def test_loads_rejects_malformed_entries():
    with pytest.raises(ConfigurationError, match="malformed"):
        FaultPlan.loads('{"crashes": [{"router": "r1"}]}')
    with pytest.raises(ConfigurationError, match="must be a list"):
        FaultPlan.loads('{"crashes": {}}')
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        FaultPlan.loads("{nope")


def test_load_save_round_trip(tmp_path):
    plan = _full_plan()
    path = tmp_path / "plan.json"
    plan.save(str(path))
    assert FaultPlan.load(str(path)) == plan

"""Unit tests for the decision process and routing policies."""

from __future__ import annotations

import pytest

from repro.bgp.attrs import Route
from repro.bgp.decision import preference_key, rank_candidates, select_best
from repro.bgp.policy import (
    NoValleyPolicy,
    Relationship,
    RoutingPolicy,
    ShortestPathPolicy,
)
from repro.errors import ConfigurationError


def route(peer: str, *path: str) -> tuple:
    return (peer, Route(prefix="p0", as_path=(peer,) + tuple(path), learned_from=peer))


def constant_pref(peer: str, r: Route) -> int:
    del peer, r
    return 100


class TestSelectBest:
    def test_empty_candidates(self):
        assert select_best([], constant_pref) is None

    def test_shortest_path_wins(self):
        short = route("a", "o")
        long = route("b", "x", "o")
        assert select_best([long, short], constant_pref) == short

    def test_tie_broken_by_lowest_peer_name(self):
        first = route("a", "o")
        second = route("b", "o")
        assert select_best([second, first], constant_pref) == first

    def test_higher_local_pref_beats_shorter_path(self):
        preferred = route("z", "w", "x", "o")  # longer but higher pref
        short = route("a", "o")

        def pref(peer: str, r: Route) -> int:
            del r
            return 300 if peer == "z" else 100

        assert select_best([short, preferred], pref) == preferred

    def test_selection_independent_of_order(self):
        candidates = [route("c", "x", "o"), route("a", "o"), route("b", "o")]
        best_forward = select_best(candidates, constant_pref)
        best_reverse = select_best(list(reversed(candidates)), constant_pref)
        assert best_forward == best_reverse

    def test_rank_candidates_total_order(self):
        candidates = [route("c", "x", "o"), route("a", "o"), route("b", "o")]
        ranked = rank_candidates(candidates, constant_pref)
        assert [peer for peer, _ in ranked] == ["a", "b", "c"]

    def test_preference_key_orders_min_best(self):
        peer_a, route_a = route("a", "o")
        peer_c, route_c = route("c", "x", "o")
        assert preference_key(peer_a, route_a, constant_pref) < preference_key(
            peer_c, route_c, constant_pref
        )


class TestShortestPathPolicy:
    def test_constant_local_pref(self):
        policy = ShortestPathPolicy()
        _, r = route("a", "o")
        assert policy.local_pref("me", "a", r) == 100

    def test_export_everywhere(self):
        policy = ShortestPathPolicy()
        _, r = route("a", "o")
        assert policy.permits_export("me", r, "anyone")

    def test_policy_name(self):
        assert ShortestPathPolicy().name == "ShortestPathPolicy"
        assert isinstance(ShortestPathPolicy(), RoutingPolicy)


class TestNoValleyPolicy:
    @pytest.fixture
    def policy(self):
        relationships = {
            ("me", "cust"): Relationship.CUSTOMER,
            ("me", "peer1"): Relationship.PEER,
            ("me", "prov"): Relationship.PROVIDER,
            ("me", "cust2"): Relationship.CUSTOMER,
        }
        return NoValleyPolicy.from_mapping(relationships)

    def r(self, learned_from: str) -> Route:
        return Route(prefix="p0", as_path=(learned_from, "o"), learned_from=learned_from)

    def test_prefer_customer_over_peer_over_provider(self, policy):
        assert policy.local_pref("me", "cust", self.r("cust")) == 300
        assert policy.local_pref("me", "peer1", self.r("peer1")) == 200
        assert policy.local_pref("me", "prov", self.r("prov")) == 100

    def test_customer_route_exported_everywhere(self, policy):
        r = self.r("cust")
        for to_peer in ("peer1", "prov", "cust2"):
            assert policy.permits_export("me", r, to_peer)

    def test_peer_route_only_to_customers(self, policy):
        r = self.r("peer1")
        assert policy.permits_export("me", r, "cust")
        assert not policy.permits_export("me", r, "prov")

    def test_provider_route_only_to_customers(self, policy):
        r = self.r("prov")
        assert policy.permits_export("me", r, "cust2")
        assert not policy.permits_export("me", r, "peer1")

    def test_self_originated_exported_everywhere(self, policy):
        own = Route(prefix="p0", as_path=("me",), learned_from="me")
        for to_peer in ("cust", "peer1", "prov"):
            assert policy.permits_export("me", own, to_peer)

    def test_missing_relationship_raises(self, policy):
        with pytest.raises(ConfigurationError):
            policy.local_pref("me", "stranger", self.r("stranger"))

    def test_prefer_customer_disabled(self):
        relationships = {("me", "cust"): Relationship.CUSTOMER}
        policy = NoValleyPolicy.from_mapping(relationships, prefer_customer=False)
        r = Route(prefix="p0", as_path=("cust", "o"), learned_from="cust")
        assert policy.local_pref("me", "cust", r) == 100

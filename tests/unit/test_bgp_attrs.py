"""Unit tests for Route attributes and UpdateMessage."""

from __future__ import annotations

import pytest

from repro.bgp.attrs import Route
from repro.bgp.messages import UpdateMessage
from repro.core.rcn import RootCause
from repro.errors import ProtocolError


def route(*path: str) -> Route:
    return Route(prefix="p0", as_path=tuple(path), learned_from=path[0])


def test_route_fields():
    r = route("b", "c", "origin")
    assert r.path_length == 3
    assert r.origin_as == "origin"
    assert r.next_hop_as == "b"
    assert r.learned_from == "b"


def test_route_requires_prefix_and_path():
    with pytest.raises(ProtocolError):
        Route(prefix="", as_path=("a",), learned_from="a")
    with pytest.raises(ProtocolError):
        Route(prefix="p0", as_path=(), learned_from="a")


def test_route_contains():
    r = route("b", "c")
    assert r.contains("b")
    assert r.contains("c")
    assert not r.contains("z")


def test_prepended_by():
    r = route("b", "c")
    extended = r.prepended_by("a")
    assert extended.as_path == ("a", "b", "c")
    assert extended.learned_from == "a"
    assert extended.prefix == "p0"


def test_prepended_by_loop_raises():
    with pytest.raises(ProtocolError):
        route("b", "c").prepended_by("c")


def test_same_attributes_ignores_learned_from():
    a = Route(prefix="p0", as_path=("x", "y"), learned_from="x")
    b = Route(prefix="p0", as_path=("x", "y"), learned_from="other")
    assert a.same_attributes(b)
    assert a != b


def test_route_equality_and_hash():
    a = route("b", "c")
    b = route("b", "c")
    assert a == b
    assert hash(a) == hash(b)
    assert a != route("b", "d")


def test_route_str():
    assert str(route("b", "c")) == "p0 via [b c]"


def test_update_announcement():
    update = UpdateMessage(prefix="p0", as_path=("a", "b"))
    assert update.is_announcement
    assert not update.is_withdrawal


def test_update_withdrawal():
    update = UpdateMessage(prefix="p0", as_path=None)
    assert update.is_withdrawal
    assert not update.is_announcement


def test_update_validation():
    with pytest.raises(ProtocolError):
        UpdateMessage(prefix="", as_path=None)
    with pytest.raises(ProtocolError):
        UpdateMessage(prefix="p0", as_path=())


def test_update_ids_unique():
    a = UpdateMessage(prefix="p0", as_path=None)
    b = UpdateMessage(prefix="p0", as_path=None)
    assert a.update_id != b.update_id


def test_update_str_includes_root_cause():
    cause = RootCause(link=("o", "i"), status="down", seq=1)
    update = UpdateMessage(prefix="p0", as_path=("a",), root_cause=cause)
    assert "rc=" in str(update)
    assert "withdraw" in str(UpdateMessage(prefix="p0", as_path=None))

"""Unit tests for the schema-v2 phase profiler.

Covers the v2 payload shape (labelled sub-phases from the engine probe
alongside explicit ``phase()`` blocks), tag-to-sub-phase attribution,
same-name aggregation, the v1-reading shim in :func:`load_profile`, and
:func:`phase_fractions` — the exact surface the perflint hot-set
resolver consumes.
"""

from __future__ import annotations

import json

import pytest

from repro.sim.engine import Engine
from repro.trace.profile import (
    HOT_PHASE_LABELS,
    PROFILE_SCHEMA_VERSION,
    TAG_PHASE_MAP,
    EnginePhaseProbe,
    PhaseProfiler,
    load_profile,
    phase_fractions,
)


class TestEnginePhaseProbe:
    def test_tags_map_to_subphases(self):
        probe = EnginePhaseProbe()
        for tag in ("deliver", "reuse", "mrai", "flap", None, "mystery"):
            probe.before()
            probe.after(tag)
        rows = {row["phase"]: row for row in probe.snapshot()}
        assert rows["decision_process"]["events"] == 1  # deliver
        assert rows["penalty_decay"]["events"] == 1  # reuse
        assert rows["mrai_flush"]["events"] == 1  # mrai
        assert rows["workload"]["events"] == 1  # flap
        # untagged and unknown tags are engine dispatch work
        assert rows["timer_dispatch"]["events"] == 2

    def test_snapshot_rows_are_labelled_and_sorted(self):
        probe = EnginePhaseProbe()
        probe.before()
        probe.after("reuse")
        probe.before()
        probe.after("deliver")
        rows = probe.snapshot()
        assert [row["phase"] for row in rows] == [
            "decision_process",
            "penalty_decay",
        ]
        for row in rows:
            assert row["source"] == "engine_probe"
            assert row["wall_seconds"] >= 0.0

    def test_reset_forgets_samples(self):
        probe = EnginePhaseProbe()
        probe.before()
        probe.after("reuse")
        probe.reset()
        assert probe.snapshot() == []

    def test_engine_brackets_every_executed_event(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("a"), tag="reuse")
        engine.schedule(2.0, lambda: fired.append("b"), tag="deliver")
        engine.schedule(3.0, lambda: fired.append("c"))
        probe = EnginePhaseProbe()
        engine.set_phase_probe(probe)
        engine.run()
        assert fired == ["a", "b", "c"]
        rows = {row["phase"]: row["events"] for row in probe.snapshot()}
        assert rows == {
            "penalty_decay": 1,
            "decision_process": 1,
            "timer_dispatch": 1,
        }


class TestPhaseProfilerReport:
    def test_schema_v2_with_probe_subphases(self):
        engine = Engine()
        profiler = PhaseProfiler()
        probe = profiler.attach_probe(engine)
        engine.schedule(1.0, lambda: None, tag="reuse")
        with profiler.phase("episode"):
            engine.run()
        payload = profiler.report()
        assert payload["schema"] == PROFILE_SCHEMA_VERSION == 2
        names = [entry["phase"] for entry in payload["phases"]]
        assert "episode" in names
        assert "penalty_decay" in names
        assert probe.snapshot()  # the probe kept its samples

    def test_same_name_phases_aggregate(self):
        profiler = PhaseProfiler()
        with profiler.phase("warm_up"):
            pass
        with profiler.phase("warm_up"):
            pass
        with profiler.phase("episode"):
            pass
        payload = profiler.report()
        names = [entry["phase"] for entry in payload["phases"]]
        assert names == ["warm_up", "episode"]

    def test_total_wall_sums_aggregated_phases(self):
        profiler = PhaseProfiler()
        with profiler.phase("build"):
            pass
        payload = profiler.report()
        total = sum(
            float(entry["wall_seconds"]) for entry in payload["phases"]
        )
        assert payload["total_wall_seconds"] == pytest.approx(total, abs=1e-6)

    def test_hot_phase_labels_align_with_tag_map(self):
        assert set(TAG_PHASE_MAP.values()) <= set(HOT_PHASE_LABELS) | {
            "workload"
        }


class TestLoadProfile:
    def test_v2_roundtrip(self, tmp_path):
        path = tmp_path / "profile.json"
        profiler = PhaseProfiler()
        with profiler.phase("build"):
            pass
        profiler.export(str(path))
        loaded = load_profile(str(path))
        assert loaded["schema"] == 2
        assert "upgraded_from" not in loaded

    def test_v1_shim_upgrades_and_aggregates(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "phases": [
                        {"phase": "episode", "wall_seconds": 1.0, "events": 5},
                        {"phase": "episode", "wall_seconds": 2.0, "events": 7},
                        {"phase": "build", "wall_seconds": 1.0},
                    ],
                }
            )
        )
        loaded = load_profile(str(path))
        assert loaded["schema"] == 2
        assert loaded["upgraded_from"] == 1
        episode = next(
            e for e in loaded["phases"] if e["phase"] == "episode"
        )
        assert episode["wall_seconds"] == pytest.approx(3.0)
        assert episode["events"] == 12

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text(json.dumps({"schema": 99, "phases": []}))
        with pytest.raises(ValueError, match="unsupported schema"):
            load_profile(str(path))

    def test_malformed_payloads_rejected(self, tmp_path):
        for payload in ("[]", json.dumps({"schema": 2})):
            path = tmp_path / "profile.json"
            path.write_text(payload)
            with pytest.raises(ValueError):
                load_profile(str(path))


class TestPhaseFractions:
    def test_fractions_sum_to_one(self):
        report = {
            "phases": [
                {"phase": "decision_process", "wall_seconds": 3.0},
                {"phase": "penalty_decay", "wall_seconds": 1.0},
            ]
        }
        fractions = phase_fractions(report)
        assert fractions["decision_process"] == pytest.approx(0.75)
        assert fractions["penalty_decay"] == pytest.approx(0.25)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_duplicate_labels_merge(self):
        report = {
            "phases": [
                {"phase": "episode", "wall_seconds": 1.0},
                {"phase": "episode", "wall_seconds": 1.0},
            ]
        }
        assert phase_fractions(report) == {"episode": pytest.approx(1.0)}

    def test_zero_total_and_missing_phases_are_safe(self):
        assert phase_fractions({}) == {}
        assert phase_fractions(
            {"phases": [{"phase": "build", "wall_seconds": 0.0}]}
        ) == {"build": 0.0}

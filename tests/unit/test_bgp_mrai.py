"""Unit tests for the MRAI rate limiter."""

from __future__ import annotations

import pytest

from repro.bgp.mrai import MraiConfig, MraiLimiter
from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class FlushProbe:
    def __init__(self, send: bool = True) -> None:
        self.send = send
        self.calls = []

    def __call__(self, peer: str, prefixes: set) -> bool:
        self.calls.append((peer, set(prefixes)))
        return self.send


@pytest.fixture
def engine():
    return Engine()


def make_limiter(engine, config=None, send=True):
    probe = FlushProbe(send=send)
    limiter = MraiLimiter(
        engine, config or MraiConfig(base=30.0), "r1", RngRegistry(1), probe
    )
    return limiter, probe


def test_config_validation():
    with pytest.raises(ConfigurationError):
        MraiConfig(base=-1.0)
    with pytest.raises(ConfigurationError):
        MraiConfig(jitter_low=0.0)
    with pytest.raises(ConfigurationError):
        MraiConfig(jitter_low=0.9, jitter_high=0.8)


def test_disabled_mrai_always_allows(engine):
    limiter, _ = make_limiter(engine, MraiConfig(base=0.0))
    assert limiter.may_send_now("p")
    limiter.note_sent("p")
    assert limiter.may_send_now("p")


def test_send_starts_holdoff(engine):
    limiter, _ = make_limiter(engine)
    assert limiter.may_send_now("p")
    limiter.note_sent("p")
    assert not limiter.may_send_now("p")


def test_holdoff_is_per_peer(engine):
    limiter, _ = make_limiter(engine)
    limiter.note_sent("p1")
    assert not limiter.may_send_now("p1")
    assert limiter.may_send_now("p2")


def test_holdoff_duration_is_jittered_base(engine):
    limiter, _ = make_limiter(engine)
    limiter.note_sent("p")
    # Jitter range [0.75, 1.0] x 30s.
    engine.run(until=30.0 * 0.74)
    assert not limiter.may_send_now("p")
    engine.run(until=31.0)
    assert limiter.may_send_now("p")


def test_deferred_prefixes_flushed_on_expiry(engine):
    limiter, probe = make_limiter(engine)
    limiter.note_sent("p")
    limiter.defer("p", "p0")
    limiter.defer("p", "p1")
    engine.run()
    assert probe.calls == [("p", {"p0", "p1"})]


def test_timer_restarts_when_flush_sends(engine):
    limiter, probe = make_limiter(engine, send=True)
    limiter.note_sent("p")
    limiter.defer("p", "p0")
    engine.run(until=40.0)
    assert len(probe.calls) == 1
    assert not limiter.may_send_now("p")  # restarted


def test_timer_goes_idle_when_flush_sends_nothing(engine):
    limiter, probe = make_limiter(engine, send=False)
    limiter.note_sent("p")
    limiter.defer("p", "p0")
    engine.run()
    assert len(probe.calls) == 1
    assert limiter.may_send_now("p")
    assert engine.pending_count == 0  # queue drains


def test_expiry_without_pending_is_silent(engine):
    limiter, probe = make_limiter(engine)
    limiter.note_sent("p")
    engine.run()
    assert probe.calls == []
    assert limiter.may_send_now("p")


def test_pending_prefixes_query(engine):
    limiter, _ = make_limiter(engine)
    limiter.note_sent("p")
    limiter.defer("p", "p0")
    assert limiter.pending_prefixes("p") == {"p0"}
    assert limiter.pending_prefixes("other") == set()
    assert limiter.has_pending()


def test_defer_without_holdoff_rejected(engine):
    from repro.errors import TimerError

    limiter, _ = make_limiter(engine)
    with pytest.raises(TimerError):
        limiter.defer("p", "p0")


def test_duplicate_defer_collapses(engine):
    limiter, probe = make_limiter(engine)
    limiter.note_sent("p")
    limiter.defer("p", "p0")
    limiter.defer("p", "p0")
    engine.run(until=40.0)
    assert probe.calls == [("p", {"p0"})]

"""Unit tests for the metrics collector and convergence summary, driven
by a tiny real simulation (two routers plus a flapping origin)."""

from __future__ import annotations

import pytest

from repro.bgp.mrai import MraiConfig
from repro.bgp.origin import OriginRouter
from repro.bgp.router import BgpRouter, RouterConfig
from repro.core.params import CISCO_DEFAULTS
from repro.metrics.collector import MetricsCollector
from repro.metrics.convergence import ConvergenceSummary, summarize_convergence
from repro.net.link import LinkConfig
from repro.net.network import Network
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


@pytest.fixture
def simulation():
    engine = Engine()
    rng = RngRegistry(2)
    network = Network(engine, rng)
    config = RouterConfig(damping=CISCO_DEFAULTS, mrai=MraiConfig(base=0.0))
    r1 = BgpRouter("r1", engine, rng, config=config)
    r2 = BgpRouter("r2", engine, rng, config=config)
    origin = OriginRouter("origin", engine, rng, prefix="p0", isp="r1")
    for node in (r1, r2, origin):
        network.add_node(node)
    link = LinkConfig(base_delay=0.001, jitter=0.0)
    network.add_link("origin", "r1", link)
    network.add_link("r1", "r2", link)
    return engine, network, origin, r1, r2


def test_counts_updates_delivered_after_attach(simulation):
    engine, network, origin, r1, r2 = simulation
    origin.bring_up()
    engine.run()  # warm-up traffic, not observed
    collector = MetricsCollector()
    collector.attach(network, [r1, r2])
    origin.take_down()
    engine.run(until=engine.now + 1.0)
    # down propagates: origin->r1, r1->r2 = 2 updates.
    assert collector.message_count == 2
    assert collector.updates[0].is_withdrawal


def test_attach_twice_rejected(simulation):
    engine, network, origin, r1, r2 = simulation
    collector = MetricsCollector()
    collector.attach(network, [r1, r2])
    with pytest.raises(RuntimeError):
        collector.attach(network, [r1])


def test_convergence_time_from_reference(simulation):
    engine, network, origin, r1, r2 = simulation
    origin.bring_up()
    engine.run()
    collector = MetricsCollector()
    collector.attach(network, [r1, r2])
    down_at = engine.now
    origin.take_down()
    engine.run(until=down_at + 60.0)
    origin.bring_up()
    final = engine.now
    engine.run()
    assert collector.convergence_time(final) > 0
    assert collector.convergence_time(final) < 5.0  # just propagation
    assert collector.last_update_time is not None


def test_convergence_time_zero_without_updates(simulation):
    engine, network, origin, r1, r2 = simulation
    collector = MetricsCollector()
    collector.attach(network, [r1, r2])
    assert collector.convergence_time(0.0) == 0.0
    assert collector.last_update_time is None


def test_suppression_changes_recorded(simulation):
    engine, network, origin, r1, r2 = simulation
    origin.bring_up()
    engine.run()
    collector = MetricsCollector()
    collector.attach(network, [r1, r2])
    for _ in range(3):
        origin.take_down()
        engine.run(until=engine.now + 1.0)
        origin.bring_up()
        engine.run(until=engine.now + 1.0)
    assert collector.total_suppressions >= 1
    assert collector.peak_damped_links() >= 1
    assert "r1" in collector.routers_with_suppressions()
    engine.run()  # drain reuse timers
    series = collector.damped_link_series()
    assert series[-1][1] == 0  # everything reused at the end


def test_reuse_events_and_counts(simulation):
    engine, network, origin, r1, r2 = simulation
    origin.bring_up()
    engine.run()
    collector = MetricsCollector()
    collector.attach(network, [r1, r2])
    for _ in range(3):
        origin.take_down()
        engine.run(until=engine.now + 1.0)
        origin.bring_up()
        engine.run(until=engine.now + 1.0)
    engine.run()
    events = collector.reuse_events()
    assert events
    assert collector.noisy_reuse_count() + collector.silent_reuse_count() == len(events)


def test_update_series_binning(simulation):
    engine, network, origin, r1, r2 = simulation
    origin.bring_up()
    engine.run()
    collector = MetricsCollector()
    collector.attach(network, [r1, r2])
    origin.take_down()
    engine.run(until=engine.now + 1.0)
    series = collector.update_series(bin_width=5.0, start=0.0, end=engine.now)
    assert sum(count for _, count in series) == collector.message_count


def test_summarize_convergence(simulation):
    engine, network, origin, r1, r2 = simulation
    origin.bring_up()
    engine.run()
    collector = MetricsCollector()
    collector.attach(network, [r1, r2])
    origin.take_down()
    engine.run(until=engine.now + 60.0)
    origin.bring_up()
    final = engine.now
    engine.run()
    summary = summarize_convergence(collector, pulses=1, final_announcement_time=final)
    assert summary.pulses == 1
    assert summary.message_count == collector.message_count
    assert summary.convergence_time == collector.convergence_time(final)
    assert len(summary.as_row()) == len(ConvergenceSummary.headers())


def test_summarize_without_final_announcement(simulation):
    engine, network, origin, r1, r2 = simulation
    collector = MetricsCollector()
    collector.attach(network, [r1, r2])
    summary = summarize_convergence(collector, pulses=0, final_announcement_time=None)
    assert summary.convergence_time == 0.0
    assert summary.message_count == 0

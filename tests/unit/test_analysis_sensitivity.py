"""Unit tests for sensitivity analysis and distance profiling."""

from __future__ import annotations

import pytest

from repro.analysis.distance import convergence_by_distance, farthest_settling_router
from repro.analysis.sensitivity import (
    evaluate_params,
    sweep_parameter,
    tolerance_frontier,
)
from repro.core.intended import IntendedBehaviorModel
from repro.core.params import CISCO_DEFAULTS, JUNIPER_DEFAULTS
from repro.errors import ConfigurationError


class TestEvaluateParams:
    def test_cisco_onset_is_three(self):
        point = evaluate_params("cisco", CISCO_DEFAULTS)
        assert point.suppression_onset == 3
        assert point.delay_at_onset > 0
        assert point.delay_sustained >= point.delay_at_onset

    def test_juniper_onset_is_two(self):
        point = evaluate_params("juniper", JUNIPER_DEFAULTS)
        assert point.suppression_onset == 2

    def test_never_suppressing_config(self):
        tolerant = CISCO_DEFAULTS.with_overrides(cutoff_threshold=1_000_000.0)
        point = evaluate_params("huge-cutoff", tolerant)
        assert point.suppression_onset is None
        assert point.delay_at_onset == 0.0

    def test_sustained_delay_bounded_by_hold_down(self):
        point = evaluate_params("cisco", CISCO_DEFAULTS)
        assert point.delay_sustained <= CISCO_DEFAULTS.max_hold_down + 1e-6


class TestSweepParameter:
    def test_cutoff_sweep_raises_onset(self):
        points = sweep_parameter(
            CISCO_DEFAULTS, "cutoff_threshold", [2000.0, 3000.0, 5000.0]
        )
        onsets = [p.suppression_onset for p in points]
        assert onsets == sorted(onsets)
        assert onsets[0] == 3
        assert onsets[-1] > 3

    def test_half_life_sweep_changes_delay(self):
        points = sweep_parameter(
            CISCO_DEFAULTS, "half_life", [10 * 60.0, 15 * 60.0, 30 * 60.0]
        )
        delays = [p.delay_sustained for p in points]
        # Longer half-life decays slower but also caps lower relative to
        # hold-down... here all are hold-down-capped at 3600s.
        assert all(d <= CISCO_DEFAULTS.max_hold_down + 1e-6 for d in delays)

    def test_labels(self):
        points = sweep_parameter(CISCO_DEFAULTS, "cutoff_threshold", [2500.0])
        assert points[0].label == "cutoff_threshold=2500"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sweep_parameter(CISCO_DEFAULTS, "cutoff_threshold", [])
        with pytest.raises(ConfigurationError):
            sweep_parameter(CISCO_DEFAULTS, "nonexistent", [1.0])


class TestToleranceFrontier:
    def test_frontier_achieves_target(self):
        cutoff = tolerance_frontier(CISCO_DEFAULTS, target_onset=5)
        params = CISCO_DEFAULTS.with_overrides(cutoff_threshold=cutoff)
        model = IntendedBehaviorModel(params, flap_interval=60.0, tup=0.0)
        onset = model.critical_pulse_count()
        assert onset is None or onset >= 5
        # And it is tight: slightly below the frontier suppresses earlier.
        tighter = CISCO_DEFAULTS.with_overrides(cutoff_threshold=cutoff - 50.0)
        tighter_model = IntendedBehaviorModel(tighter, flap_interval=60.0, tup=0.0)
        assert tighter_model.critical_pulse_count() < 5

    def test_target_one_is_trivial(self):
        cutoff = tolerance_frontier(CISCO_DEFAULTS, target_onset=1, low=800.0)
        assert cutoff >= 800.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tolerance_frontier(CISCO_DEFAULTS, target_onset=0)


class TestDistanceProfile:
    @pytest.fixture(scope="class")
    def episode(self):
        from repro.core.params import CISCO_DEFAULTS as params
        from repro.topology.mesh import mesh_topology
        from repro.workload.pulses import PulseSchedule
        from repro.workload.scenarios import Scenario, ScenarioConfig

        config = ScenarioConfig(topology=mesh_topology(5, 5), damping=params, seed=4)
        scenario = Scenario(config)
        scenario.warm_up()
        result = scenario.run(PulseSchedule.regular(1, 60.0))
        return scenario, result

    def test_buckets_cover_all_routers(self, episode):
        scenario, result = episode
        buckets = convergence_by_distance(scenario, result)
        assert sum(b.router_count for b in buckets) == len(scenario.routers)
        assert buckets[0].hops == 0
        assert buckets[0].router_count == 1  # the ISP itself

    def test_settle_times_nonnegative_and_bounded(self, episode):
        scenario, result = episode
        for bucket in convergence_by_distance(scenario, result):
            assert 0.0 <= bucket.mean_settle <= bucket.max_settle
            assert bucket.max_settle <= result.convergence_time + 1e-6

    def test_suppression_spreads_beyond_the_isp(self, episode):
        scenario, result = episode
        buckets = convergence_by_distance(scenario, result)
        remote = [b for b in buckets if b.hops >= 2]
        assert any(b.routers_with_suppression > 0 for b in remote)

    def test_farthest_settling_router(self, episode):
        scenario, result = episode
        name = farthest_settling_router(scenario, result)
        assert name in scenario.routers
        prefix = scenario.config.prefix
        latest = scenario.routers[name].last_best_change[prefix]
        for router in scenario.routers.values():
            change = router.last_best_change.get(prefix)
            assert change is None or change <= latest

"""Warm-state snapshot layer: capture/restore correctness.

The load-bearing property is digest identity — an episode run on a
restored scenario must be byte-for-byte equal (as seen by the metrics
digest) to one run on a freshly warmed scenario. Everything else here
guards the snapshot lifecycle: single-use scenarios, cache keying, and
independence of restored copies.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.base import small_mesh_config
from repro.metrics.digest import run_digest
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import (
    Scenario,
    WarmStateCache,
    WarmStateSnapshot,
    _config_cache_key,
)


def fresh_digest(config, pulses: int) -> str:
    scenario = Scenario(config)
    scenario.warm_up()
    result = scenario.run(PulseSchedule.regular(pulses, 60.0))
    return run_digest(result.collector)


class TestWarmStateSnapshot:
    def test_restored_episode_is_digest_identical(self):
        config = small_mesh_config()
        snapshot = WarmStateSnapshot.capture(config)
        for pulses in (0, 2):
            restored = snapshot.restore()
            result = restored.run(PulseSchedule.regular(pulses, 60.0))
            assert run_digest(result.collector) == fresh_digest(config, pulses)

    def test_restored_scenarios_are_independent(self):
        snapshot = WarmStateSnapshot.capture(small_mesh_config())
        first = snapshot.restore()
        second = snapshot.restore()
        result_first = first.run(PulseSchedule.regular(2, 60.0))
        # Running the first copy must not perturb the second.
        result_second = second.run(PulseSchedule.regular(2, 60.0))
        assert run_digest(result_first.collector) == run_digest(result_second.collector)

    def test_snapshot_preserves_warmup_convergence(self):
        scenario = Scenario(small_mesh_config())
        scenario.warm_up()
        snapshot = WarmStateSnapshot.from_scenario(scenario)
        assert snapshot.warmup_convergence == scenario.warmup_convergence
        assert snapshot.restore().warmup_convergence == scenario.warmup_convergence
        assert snapshot.size_bytes == len(snapshot.blob) > 0

    def test_source_scenario_stays_usable_after_capture(self):
        config = small_mesh_config()
        scenario = Scenario(config)
        scenario.warm_up()
        WarmStateSnapshot.from_scenario(scenario)
        result = scenario.run(PulseSchedule.regular(1, 60.0))
        assert run_digest(result.collector) == fresh_digest(config, 1)

    def test_rejects_unwarmed_scenario(self):
        scenario = Scenario(small_mesh_config())
        with pytest.raises(SimulationError):
            WarmStateSnapshot.from_scenario(scenario)

    def test_rejects_already_run_scenario(self):
        scenario = Scenario(small_mesh_config())
        scenario.warm_up()
        scenario.run(PulseSchedule.regular(0, 60.0))
        with pytest.raises(SimulationError):
            WarmStateSnapshot.from_scenario(scenario)

    def test_snapshot_itself_is_picklable(self):
        """Snapshots cross the process boundary via the pool initializer."""
        snapshot = WarmStateSnapshot.capture(small_mesh_config())
        clone = pickle.loads(pickle.dumps(snapshot))
        result = clone.restore().run(PulseSchedule.regular(1, 60.0))
        assert run_digest(result.collector) == fresh_digest(small_mesh_config(), 1)


class TestWarmStateCache:
    def test_capture_happens_once_per_config(self):
        cache = WarmStateCache()
        config = small_mesh_config()
        first = cache.get(config)
        assert cache.get(config) is first
        assert len(cache) == 1

    def test_distinct_configs_get_distinct_snapshots(self):
        cache = WarmStateCache()
        a = cache.get(small_mesh_config(seed=1))
        b = cache.get(small_mesh_config(seed=2))
        assert a is not b
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = WarmStateCache(max_entries=2)
        first = cache.get(small_mesh_config(seed=1))
        cache.get(small_mesh_config(seed=2))
        cache.get(small_mesh_config(seed=3))  # evicts seed=1
        assert len(cache) == 2
        assert cache.get(small_mesh_config(seed=1)) is not first

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            WarmStateCache(max_entries=0)

    def test_cache_key_covers_every_config_field(self):
        """A new ScenarioConfig field that never reaches the cache key
        would silently alias distinct configs to one snapshot."""
        import dataclasses

        from repro.workload.scenarios import ScenarioConfig

        key_fields = len(dataclasses.fields(ScenarioConfig))
        key = _config_cache_key(small_mesh_config())
        # id(topology) and topology.name both stand in for the topology
        # field, hence one extra element.
        assert len(key) == key_fields + 1

    def test_hit_and_miss_counters_across_two_sweeps(self):
        """Two sweeps over the same config: the first pays one capture,
        the second is served entirely from the cache."""
        cache = WarmStateCache()
        config = small_mesh_config()
        first_sweep = [cache.get(config) for _ in range(3)]
        assert (cache.hits, cache.misses) == (2, 1)
        second_sweep = [cache.get(config) for _ in range(3)]
        assert (cache.hits, cache.misses) == (5, 1)
        assert all(s is first_sweep[0] for s in first_sweep + second_sweep)

    def test_digest_keyed_identity_across_equal_configs(self):
        """Equal configs (same topology object, same fields) hit one
        entry, and its blob digest is stable."""
        cache = WarmStateCache()
        a = cache.get(small_mesh_config(seed=5))
        b = cache.get(small_mesh_config(seed=5))
        assert a is b
        assert a.digest == WarmStateSnapshot.capture(small_mesh_config(seed=5)).digest

    def test_lru_eviction_order_follows_recency_of_use(self):
        """Touching an entry must move it to the back of the eviction
        queue — eviction is least-recently-*used*, not least-recently-
        captured."""
        cache = WarmStateCache(max_entries=2)
        first = cache.get(small_mesh_config(seed=1))
        second = cache.get(small_mesh_config(seed=2))
        # Refresh seed=1, then insert seed=3: seed=2 is now the LRU entry.
        assert cache.get(small_mesh_config(seed=1)) is first
        cache.get(small_mesh_config(seed=3))
        assert cache.get(small_mesh_config(seed=1)) is first  # survived
        assert cache.get(small_mesh_config(seed=2)) is not second  # evicted

    def test_invalidate_drops_only_the_named_config(self):
        cache = WarmStateCache()
        cache.get(small_mesh_config(seed=1))
        kept = cache.get(small_mesh_config(seed=2))
        assert cache.invalidate(small_mesh_config(seed=1)) is True
        assert cache.invalidate(small_mesh_config(seed=1)) is False
        assert len(cache) == 1
        assert cache.get(small_mesh_config(seed=2)) is kept

    def test_restore_heals_a_snapshot_that_fails_to_restore(self):
        """A corrupted cached blob is evicted and recaptured once, and
        the healed snapshot restores a scenario that runs digest-
        identically to a fresh warm-up."""
        cache = WarmStateCache()
        config = small_mesh_config()
        poisoned = cache.get(config)
        poisoned.blob = b"not a pickle"
        scenario = cache.restore(config)
        result = scenario.run(PulseSchedule.regular(1, 60.0))
        assert run_digest(result.collector) == fresh_digest(config, 1)
        # The poisoned entry was replaced, and healing cost one extra miss.
        assert cache.get(config) is not poisoned
        assert cache.misses == 2

    def test_clear_resets_entries_and_counters(self):
        cache = WarmStateCache()
        cache.get(small_mesh_config())
        cache.get(small_mesh_config())
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)


class TestSnapshotDigest:
    def test_digest_is_content_addressed_and_cached(self):
        snapshot = WarmStateSnapshot.capture(small_mesh_config())
        import hashlib

        assert snapshot.digest == hashlib.sha256(snapshot.blob).hexdigest()
        assert snapshot.digest is snapshot.digest  # memoised

    def test_digest_survives_pickling(self):
        snapshot = WarmStateSnapshot.capture(small_mesh_config())
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.digest == snapshot.digest

"""Unit tests for figure-driver internals."""

from __future__ import annotations

import pytest

from repro.core.intended import IntendedBehaviorModel
from repro.core.params import CISCO_DEFAULTS
from repro.experiments.fig3 import penalty_samples
from repro.experiments.fig7 import _count_upward_crossings, _first_reuse_estimate
from repro.experiments.fig8_9 import calculation_series
from repro.core.damping import SuppressionRecord


class TestCountUpwardCrossings:
    def test_single_crossing(self):
        history = [(0.0, 1000.0), (10.0, 2500.0)]
        assert _count_upward_crossings(history, 2000.0) == 1

    def test_no_crossing(self):
        history = [(0.0, 500.0), (10.0, 1500.0)]
        assert _count_upward_crossings(history, 2000.0) == 0

    def test_multiple_crossings_require_dropping_below(self):
        # up, stays up (no second count), down, up again (second count).
        history = [
            (0.0, 2500.0),
            (10.0, 2600.0),
            (20.0, 1000.0),
            (30.0, 2500.0),
        ]
        assert _count_upward_crossings(history, 2000.0) == 2

    def test_empty_history(self):
        assert _count_upward_crossings([], 2000.0) == 0


class TestFirstReuseEstimate:
    def test_estimate_uses_starting_penalty(self):
        record = SuppressionRecord(
            peer="p", prefix="d", started=100.0, penalty_at_start=3000.0
        )
        expected = 100.0 + CISCO_DEFAULTS.reuse_delay(3000.0)
        assert _first_reuse_estimate(record, CISCO_DEFAULTS) == pytest.approx(expected)


class TestPenaltySamples:
    def test_withdrawal_then_reannouncement(self):
        samples = dict(
            penalty_samples(
                CISCO_DEFAULTS,
                [(0.0, "down"), (60.0, "up")],
                end=120.0,
                step=60.0,
            )
        )
        assert samples[0.0] == pytest.approx(1000.0)
        # Cisco re-announcement adds nothing; pure decay afterwards.
        assert samples[120.0] == pytest.approx(CISCO_DEFAULTS.decay(1000.0, 120.0))

    def test_up_without_prior_down_counts_as_attribute_change(self):
        samples = dict(
            penalty_samples(CISCO_DEFAULTS, [(0.0, "up")], end=0.0, step=1.0)
        )
        assert samples[0.0] == pytest.approx(500.0)


class TestCalculationSeries:
    def test_matches_model_predictions(self):
        tup = 42.0
        series = dict(calculation_series([0, 1, 3, 5], tup))
        model = IntendedBehaviorModel(CISCO_DEFAULTS, flap_interval=60.0, tup=tup)
        for n in (0, 1, 3, 5):
            assert series[n] == pytest.approx(model.predict(n).convergence_time)

    def test_no_suppression_region_equals_tup(self):
        series = dict(calculation_series([1, 2], 10.0))
        assert series[1] == pytest.approx(10.0)
        assert series[2] == pytest.approx(10.0)

"""Unit tests for exact causal attribution over trace DAGs."""

from __future__ import annotations

import pytest

from repro.analysis.causality import (
    CHARGE_CLASSES,
    analyze_trace,
    causal_chain,
    compare_with_attribution,
)
from repro.trace import MemorySink, TraceRecord, Tracer


def _rec(rid, kind, /, cause=None, **data):
    return TraceRecord(id=rid, time=float(rid), kind=kind, cause_id=cause, data=data)


def test_charge_classes_vocabulary():
    assert CHARGE_CLASSES == (
        "origin-flap",
        "path-exploration",
        "secondary-charging",
        "fault-induced",
    )


def test_empty_trace_yields_empty_report():
    report = analyze_trace([])
    assert report.records_total == 0
    assert report.charges_total == 0
    assert report.secondary_fraction == 0.0
    assert report.secondary_charge_fraction == 0.0


def test_flap_rooted_charges_split_by_update_kind():
    records = [
        _rec(1, "flap"),
        _rec(2, "recv", cause=1),
        _rec(3, "charge", cause=2, kind="withdrawal", charged=True),
        _rec(4, "charge", cause=2, kind="attribute_change", charged=True),
    ]
    report = analyze_trace(records)
    assert report.charges_by_class["origin-flap"] == 1
    assert report.charges_by_class["path-exploration"] == 1
    assert report.charges_by_class["secondary-charging"] == 0


def test_reuse_rooted_charge_is_secondary_whatever_its_kind():
    records = [
        _rec(1, "reuse_expired", noisy=True),
        _rec(2, "send", cause=1),
        _rec(3, "recv", cause=2),
        _rec(4, "charge", cause=3, kind="attribute_change", charged=True),
    ]
    report = analyze_trace(records)
    assert report.charges_by_class["secondary-charging"] == 1
    assert report.secondary_charge_fraction == 1.0


def test_fault_rooted_charge_is_fault_induced_whatever_its_kind():
    records = [
        _rec(1, "fault", action="crash", detail="r1"),
        _rec(2, "send", cause=1),
        _rec(3, "recv", cause=2),
        _rec(4, "charge", cause=3, kind="withdrawal", charged=True),
        _rec(5, "charge", cause=3, kind="attribute_change", charged=True),
    ]
    report = analyze_trace(records)
    assert report.charges_by_class["fault-induced"] == 2
    assert report.charges_by_class["origin-flap"] == 0
    assert report.charges_by_class["path-exploration"] == 0


def test_fault_rooted_postponement_counts_as_fault():
    records = [
        _rec(1, "fault", action="crash", detail="r1"),
        _rec(2, "charge", cause=1, charged=True),
        _rec(3, "reuse_postponed", cause=2),
    ]
    report = analyze_trace(records)
    assert report.postponements_by_class["fault"] == 1


def test_uncharged_charge_records_are_not_counted():
    records = [
        _rec(1, "flap"),
        _rec(2, "charge", cause=1, charged=False),
    ]
    assert analyze_trace(records).charges_total == 0


def test_postponement_classification_and_fraction():
    records = [
        _rec(1, "flap"),
        _rec(2, "charge", cause=1, charged=True),
        _rec(3, "reuse_postponed", cause=2),
        _rec(4, "reuse_expired", noisy=True),
        _rec(5, "charge", cause=4, charged=True),
        _rec(6, "reuse_postponed", cause=5),
        _rec(7, "reuse_postponed"),  # no cause: unattributed
    ]
    report = analyze_trace(records)
    assert report.postponements_by_class == {
        "reuse": 1,
        "flap": 1,
        "fault": 0,
        "unattributed": 1,
    }
    assert report.secondary_fraction == pytest.approx(1 / 3)


def test_muffled_reuse_expiries_are_childless():
    records = [
        _rec(1, "reuse_expired", noisy=True),
        _rec(2, "send", cause=1),
        _rec(3, "reuse_expired", noisy=False),
    ]
    report = analyze_trace(records)
    assert report.reuse_total == 2
    assert report.reuse_noisy == 1
    assert report.reuse_muffled == 1
    assert report.reuse_muffled_childless == 1


def test_compare_with_attribution_reports_gap():
    records = [
        _rec(1, "reuse_expired", noisy=True),
        _rec(2, "charge", cause=1, charged=True),
        _rec(3, "reuse_postponed", cause=2),
    ]
    report = analyze_trace(records)
    comparison = compare_with_attribution(report, 0.9)
    assert comparison["trace_secondary_fraction"] == 1.0
    assert comparison["windowed_secondary_fraction"] == 0.9
    assert comparison["difference"] == pytest.approx(0.1)


def test_causal_chain_walks_root_first():
    records = [
        _rec(1, "flap"),
        _rec(2, "send", cause=1),
        _rec(3, "recv", cause=2),
        _rec(4, "charge", cause=3, charged=True),
    ]
    chain = causal_chain(records, 4)
    assert [record.id for record in chain] == [1, 2, 3, 4]
    assert chain[0].kind == "flap"


def test_analyze_trace_accepts_tracer_output():
    tracer = Tracer(MemorySink())
    flap = tracer.emit("flap", 0.0, pulse=0)
    charge = tracer.emit("charge", 0.1, node="n1", cause=flap, charged=True)
    tracer.emit("reuse_postponed", 0.1, node="n1", cause=charge)
    report = analyze_trace(tracer.records)
    assert report.records_total == 3
    assert report.postponements_by_class["flap"] == 1

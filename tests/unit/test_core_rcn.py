"""Unit tests for Root Cause Notification."""

from __future__ import annotations

import pytest

from repro.core.rcn import RootCause, RootCauseGenerator, RootCauseHistory
from repro.errors import ConfigurationError


def rc(seq: int, status: str = "down") -> RootCause:
    return RootCause(link=("origin", "isp"), status=status, seq=seq)


def test_root_cause_validation():
    with pytest.raises(ConfigurationError):
        RootCause(link=("a", "b"), status="sideways", seq=1)
    with pytest.raises(ConfigurationError):
        RootCause(link=("a", "b"), status="up", seq=-1)


def test_root_cause_is_hashable_value():
    assert rc(1) == rc(1)
    assert rc(1) != rc(2)
    assert rc(1, "down") != rc(1, "up")
    assert len({rc(1), rc(1), rc(2)}) == 2


def test_root_cause_str_matches_paper_notation():
    assert str(rc(3, "up")) == "{[origin isp], up, 3}"


def test_generator_monotonic_sequence():
    generator = RootCauseGenerator(("origin", "isp"))
    first = generator.next_cause("down")
    second = generator.next_cause("up")
    assert first.seq == 1
    assert second.seq == 2
    assert generator.last_seq == 2
    assert first.link == ("origin", "isp")


def test_history_charges_first_occurrence_only():
    history = RootCauseHistory()
    assert history.should_charge("peer", rc(1)) is True
    assert history.should_charge("peer", rc(1)) is False
    assert history.should_charge("peer", rc(1)) is False
    assert history.charged_count == 1
    assert history.filtered_count == 2


def test_history_is_per_peer():
    history = RootCauseHistory()
    assert history.should_charge("peer-a", rc(1)) is True
    assert history.should_charge("peer-b", rc(1)) is True


def test_updates_without_cause_always_charge():
    history = RootCauseHistory()
    assert history.should_charge("peer", None) is True
    assert history.should_charge("peer", None) is True
    assert history.charged_count == 2


def test_distinct_causes_charge_separately():
    history = RootCauseHistory()
    assert history.should_charge("peer", rc(1, "down")) is True
    assert history.should_charge("peer", rc(1, "up")) is True
    assert history.should_charge("peer", rc(2, "down")) is True


def test_has_seen():
    history = RootCauseHistory()
    assert not history.has_seen("peer", rc(1))
    history.should_charge("peer", rc(1))
    assert history.has_seen("peer", rc(1))
    assert not history.has_seen("other", rc(1))


def test_capacity_evicts_oldest():
    history = RootCauseHistory(capacity=3)
    for i in range(1, 5):
        history.should_charge("peer", rc(i))
    assert not history.has_seen("peer", rc(1))  # evicted
    assert history.has_seen("peer", rc(4))
    # The evicted cause charges again.
    assert history.should_charge("peer", rc(1)) is True


def test_recent_use_refreshes_lru_position():
    history = RootCauseHistory(capacity=2)
    history.should_charge("peer", rc(1))
    history.should_charge("peer", rc(2))
    history.should_charge("peer", rc(1))  # refresh 1
    history.should_charge("peer", rc(3))  # evicts 2, not 1
    assert history.has_seen("peer", rc(1))
    assert not history.has_seen("peer", rc(2))


def test_invalid_capacity():
    with pytest.raises(ConfigurationError):
        RootCauseHistory(capacity=0)


def test_clear():
    history = RootCauseHistory()
    history.should_charge("peer", rc(1))
    history.clear()
    assert history.charged_count == 0
    assert history.should_charge("peer", rc(1)) is True


def test_peer_history_size():
    history = RootCauseHistory()
    assert history.peer_history_size("peer") == 0
    history.should_charge("peer", rc(1))
    history.should_charge("peer", rc(2))
    assert history.peer_history_size("peer") == 2

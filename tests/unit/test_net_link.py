"""Unit tests for links, messages, and the network fabric."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.link import LinkConfig
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class Recorder(Node):
    """Test node that records everything delivered to it."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.received = []

    def handle_message(self, message: Message) -> None:
        self.received.append(message)


@pytest.fixture
def net():
    engine = Engine()
    network = Network(engine, RngRegistry(1))
    a = network.add_node(Recorder("a"))
    b = network.add_node(Recorder("b"))
    network.add_link("a", "b", LinkConfig(base_delay=0.1, jitter=0.0))
    return engine, network, a, b


def test_link_config_validation():
    with pytest.raises(ConfigurationError):
        LinkConfig(base_delay=-1.0)
    with pytest.raises(ConfigurationError):
        LinkConfig(jitter=-0.1)


def test_self_link_rejected():
    engine = Engine()
    network = Network(engine, RngRegistry(1))
    network.add_node(Recorder("a"))
    with pytest.raises(ConfigurationError):
        network.add_link("a", "a")


def test_message_delivery(net):
    engine, network, a, b = net
    a.send("b", "hello")
    engine.run()
    assert len(b.received) == 1
    assert b.received[0].payload == "hello"
    assert b.received[0].src == "a"
    assert b.received[0].dst == "b"


def test_delivery_delay_is_base_plus_jitter(net):
    engine, network, a, b = net
    message = a.send("b", "x")
    engine.run()
    assert message.latency == pytest.approx(0.1)
    assert message.delivered_at == pytest.approx(0.1)


def test_jitter_bounds():
    engine = Engine()
    network = Network(engine, RngRegistry(1))
    a = network.add_node(Recorder("a"))
    network.add_node(Recorder("b"))
    network.add_link("a", "b", LinkConfig(base_delay=0.1, jitter=0.5))
    messages = [a.send("b", i) for i in range(50)]
    engine.run()
    for message in messages:
        assert 0.1 <= message.latency <= 0.6


def test_fifo_ordering_per_direction():
    """A message must never overtake an earlier one in the same direction,
    even when jitter draws would reorder them."""
    engine = Engine()
    network = Network(engine, RngRegistry(3))
    a = network.add_node(Recorder("a"))
    b = network.add_node(Recorder("b"))
    network.add_link("a", "b", LinkConfig(base_delay=0.01, jitter=0.5))
    for i in range(30):
        a.send("b", i)
    engine.run()
    payloads = [m.payload for m in b.received]
    assert payloads == sorted(payloads)


def test_bidirectional_delivery(net):
    engine, network, a, b = net
    a.send("b", "ping")
    b.send("a", "pong")
    engine.run()
    assert [m.payload for m in a.received] == ["pong"]
    assert [m.payload for m in b.received] == ["ping"]


def test_down_link_drops_messages(net):
    engine, network, a, b = net
    network.link("a", "b").set_up(False)
    a.send("b", "lost")
    engine.run()
    assert b.received == []


def test_link_failure_drops_in_flight_messages(net):
    engine, network, a, b = net
    a.send("b", "in-flight")
    network.link("a", "b").set_up(False)
    engine.run()
    assert b.received == []


def test_send_without_link_raises(net):
    engine, network, a, b = net
    network.add_node(Recorder("c"))
    with pytest.raises(SimulationError):
        a.send("c", "no link")


def test_other_end(net):
    _, network, _, _ = net
    link = network.link("a", "b")
    assert link.other_end("a") == "b"
    assert link.other_end("b") == "a"
    with pytest.raises(SimulationError):
        link.other_end("z")


def test_messages_carried_counter(net):
    engine, network, a, b = net
    a.send("b", 1)
    b.send("a", 2)
    engine.run()
    assert network.link("a", "b").messages_carried == 2


def test_message_latency_none_before_delivery():
    message = Message(src="a", dst="b", payload=None)
    assert message.latency is None


def test_message_ids_unique():
    first = Message(src="a", dst="b", payload=None)
    second = Message(src="a", dst="b", payload=None)
    assert first.msg_id != second.msg_id

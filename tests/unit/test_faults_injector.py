"""Unit tests for compiling fault plans onto the engine."""

from __future__ import annotations

from typing import List

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FlapStorm,
    LinkFault,
    LinkImpairment,
    RouterCrash,
)
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.trace.tracer import MemorySink, Tracer


class _Sink(Node):
    """A node that just counts deliveries."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.received: List[Message] = []

    def handle_message(self, message: Message) -> None:
        self.received.append(message)


def _triangle(engine: Engine, rng: RngRegistry) -> Network:
    network = Network(engine, rng)
    for name in ("n1", "n2", "n3"):
        network.add_node(_Sink(name))
    network.add_link("n1", "n2")
    network.add_link("n2", "n3")
    network.add_link("n1", "n3")
    return network


def test_validate_rejects_unknown_router(engine, rng):
    network = _triangle(engine, rng)
    plan = FaultPlan(crashes=(RouterCrash(router="ghost", at=1.0),))
    injector = FaultInjector(plan, network, rng)
    with pytest.raises(ConfigurationError, match="unknown router 'ghost'"):
        injector.install()


def test_validate_rejects_unknown_link(engine, rng):
    network = _triangle(engine, rng)
    plan = FaultPlan(link_faults=(LinkFault(a="n1", b="ghost", down_at=1.0),))
    injector = FaultInjector(plan, network, rng)
    with pytest.raises(ConfigurationError, match="unknown"):
        injector.install()


def test_double_install_rejected(engine, rng):
    network = _triangle(engine, rng)
    injector = FaultInjector(FaultPlan(), network, rng)
    injector.install()
    with pytest.raises(ConfigurationError, match="already installed"):
        injector.install()


def test_link_fault_fires_down_then_up(engine, rng):
    network = _triangle(engine, rng)
    plan = FaultPlan(
        link_faults=(LinkFault(a="n1", b="n2", down_at=5.0, up_at=9.0),)
    )
    injector = FaultInjector(plan, network, rng)
    assert injector.install() == 2
    link = network.link("n1", "n2")
    engine.run_until_idle(max_time=6.0)
    assert not link.up
    engine.run_until_idle(max_time=20.0)
    assert link.up
    assert [(action, detail) for _, action, detail in injector.fired] == [
        ("link-down", "n1-n2"),
        ("link-up", "n1-n2"),
    ]


def test_crash_and_restart_fire_and_toggle_alive(engine, rng):
    network = _triangle(engine, rng)
    plan = FaultPlan(crashes=(RouterCrash(router="n2", at=3.0, down_for=4.0),))
    FaultInjector(plan, network, rng).install()
    engine.run_until_idle(max_time=5.0)
    assert not network.node("n2").alive
    engine.run_until_idle(max_time=10.0)
    assert network.node("n2").alive


def test_install_rebases_on_start_time(engine, rng):
    network = _triangle(engine, rng)
    plan = FaultPlan(crashes=(RouterCrash(router="n1", at=2.0),))
    injector = FaultInjector(plan, network, rng)
    injector.install(start=100.0)
    engine.run_until_idle(max_time=1_000.0)
    assert injector.fired == [(102.0, "crash", "n1")]


def test_impairment_window_sets_and_clears(engine, rng):
    network = _triangle(engine, rng)
    plan = FaultPlan(
        impairments=(
            LinkImpairment(a="n1", b="n2", start=1.0, duration=5.0, loss=0.5),
        )
    )
    FaultInjector(plan, network, rng).install()
    link = network.link("n1", "n2")
    assert not link.impaired
    engine.run_until_idle(max_time=2.0)
    assert link.impaired
    assert link.loss_rate == 0.5
    engine.run_until_idle(max_time=10.0)
    assert not link.impaired


def test_storm_expansion_is_deterministic_and_isolated(engine, rng):
    """The same seed expands a storm to the same schedule, and the
    expansion draws only from the storm's named stream."""
    storm = FlapStorm(
        name="burst",
        links=(("n1", "n2"), ("n2", "n3")),
        start=0.0,
        flaps=4,
        min_interval=1.0,
        max_interval=3.0,
        down_time=0.5,
    )
    schedules = []
    for _ in range(2):
        eng = Engine()
        reg = RngRegistry(777)
        network = _triangle(eng, reg)
        injector = FaultInjector(FaultPlan(storms=(storm,)), network, reg)
        assert injector.install() == 8  # 4 flaps x (down + up)
        eng.run_until_idle(max_time=1_000.0)
        schedules.append(tuple(injector.fired))
    assert schedules[0] == schedules[1]
    # Draws come from the storm's own stream, not the protocol streams.
    fresh = RngRegistry(777)
    assert fresh.stream(storm.stream_name).uniform(1.0, 3.0) != fresh.stream(
        "link:jitter"
    ).uniform(1.0, 3.0)


def test_fired_actions_emit_fault_trace_roots(engine, rng):
    network = _triangle(engine, rng)
    tracer = Tracer(MemorySink())
    plan = FaultPlan(crashes=(RouterCrash(router="n3", at=1.0),))
    FaultInjector(plan, network, rng, tracer=tracer).install()
    engine.run_until_idle(max_time=5.0)
    faults = [record for record in tracer.records if record.kind == "fault"]
    assert len(faults) == 1
    assert faults[0].cause_id is None  # DAG root, like a flap
    assert faults[0].data["action"] == "crash"
    assert faults[0].data["detail"] == "n3"

"""Unit tests for cancellable/reschedulable timers."""

from __future__ import annotations

import pytest

from repro.errors import TimerError
from repro.sim.engine import Engine
from repro.sim.timers import Timer, TimerState


@pytest.fixture
def engine():
    return Engine()


def make_timer(engine, log):
    return Timer(engine, lambda: log.append(engine.now), name="t")


def test_timer_starts_idle(engine):
    timer = Timer(engine, lambda: None)
    assert timer.state is TimerState.IDLE
    assert not timer.is_pending
    assert timer.expiry is None


def test_timer_fires_at_expiry(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(5.0)
    assert timer.is_pending
    assert timer.expiry == 5.0
    engine.run()
    assert log == [5.0]
    assert timer.state is TimerState.FIRED


def test_start_while_pending_raises(engine):
    timer = Timer(engine, lambda: None)
    timer.start(1.0)
    with pytest.raises(TimerError):
        timer.start(2.0)


def test_reschedule_moves_expiry_later(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    timer.reschedule(10.0)
    engine.run()
    assert log == [10.0]


def test_reschedule_moves_expiry_earlier(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(10.0)
    timer.reschedule(1.0)
    engine.run()
    assert log == [1.0]


def test_reschedule_arms_idle_timer(engine):
    log = []
    timer = make_timer(engine, log)
    timer.reschedule(3.0)
    engine.run()
    assert log == [3.0]


def test_timer_fires_once_per_arming(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    engine.run()
    engine.schedule(1.0, lambda: None)
    engine.run()
    assert log == [1.0]


def test_cancel_prevents_firing(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    timer.cancel()
    engine.run()
    assert log == []
    assert timer.state is TimerState.CANCELLED


def test_cancel_idle_is_noop(engine):
    timer = Timer(engine, lambda: None)
    timer.cancel()
    assert timer.state is TimerState.IDLE


def test_restart_if_idle_when_idle(engine):
    log = []
    timer = make_timer(engine, log)
    assert timer.restart_if_idle(2.0) is True
    engine.run()
    assert log == [2.0]


def test_restart_if_idle_when_pending(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    assert timer.restart_if_idle(99.0) is False
    engine.run()
    assert log == [1.0]


def test_restart_after_fired(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    engine.run()
    timer.start(1.0)
    engine.run()
    assert log == [1.0, 2.0]


def test_negative_delay_raises(engine):
    timer = Timer(engine, lambda: None)
    with pytest.raises(TimerError):
        timer.start(-0.1)


def test_remaining_time(engine):
    timer = Timer(engine, lambda: None)
    timer.start(10.0)
    engine.schedule(4.0, lambda: None)
    engine.step()
    assert timer.remaining == pytest.approx(6.0)


def test_remaining_zero_when_not_pending(engine):
    timer = Timer(engine, lambda: None)
    assert timer.remaining == 0.0


def test_cancel_then_restart(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    timer.cancel()
    timer.start(2.0)
    engine.run()
    assert log == [2.0]


def test_rescheduled_timer_does_not_fire_at_original_expiry(engine):
    """The lazily-cancelled original event must not trigger the callback."""
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    timer.reschedule(5.0)
    engine.run(until=2.0)
    assert log == []
    engine.run()
    assert log == [5.0]

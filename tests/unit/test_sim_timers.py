"""Unit tests for cancellable/reschedulable timers."""

from __future__ import annotations

import pytest

from repro.errors import TimerError
from repro.sim.engine import Engine
from repro.sim.timers import Timer, TimerState


@pytest.fixture
def engine():
    return Engine()


def make_timer(engine, log):
    return Timer(engine, lambda: log.append(engine.now), name="t")


def test_timer_starts_idle(engine):
    timer = Timer(engine, lambda: None)
    assert timer.state is TimerState.IDLE
    assert not timer.is_pending
    assert timer.expiry is None


def test_timer_fires_at_expiry(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(5.0)
    assert timer.is_pending
    assert timer.expiry == 5.0
    engine.run()
    assert log == [5.0]
    assert timer.state is TimerState.FIRED


def test_start_while_pending_raises(engine):
    timer = Timer(engine, lambda: None)
    timer.start(1.0)
    with pytest.raises(TimerError):
        timer.start(2.0)


def test_reschedule_moves_expiry_later(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    timer.reschedule(10.0)
    engine.run()
    assert log == [10.0]


def test_reschedule_moves_expiry_earlier(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(10.0)
    timer.reschedule(1.0)
    engine.run()
    assert log == [1.0]


def test_reschedule_arms_idle_timer(engine):
    log = []
    timer = make_timer(engine, log)
    timer.reschedule(3.0)
    engine.run()
    assert log == [3.0]


def test_timer_fires_once_per_arming(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    engine.run()
    engine.schedule(1.0, lambda: None)
    engine.run()
    assert log == [1.0]


def test_cancel_prevents_firing(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    timer.cancel()
    engine.run()
    assert log == []
    assert timer.state is TimerState.CANCELLED


def test_cancel_idle_is_noop(engine):
    timer = Timer(engine, lambda: None)
    timer.cancel()
    assert timer.state is TimerState.IDLE


def test_restart_if_idle_when_idle(engine):
    log = []
    timer = make_timer(engine, log)
    assert timer.restart_if_idle(2.0) is True
    engine.run()
    assert log == [2.0]


def test_restart_if_idle_when_pending(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    assert timer.restart_if_idle(99.0) is False
    engine.run()
    assert log == [1.0]


def test_restart_after_fired(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    engine.run()
    timer.start(1.0)
    engine.run()
    assert log == [1.0, 2.0]


def test_negative_delay_raises(engine):
    timer = Timer(engine, lambda: None)
    with pytest.raises(TimerError):
        timer.start(-0.1)


def test_remaining_time(engine):
    timer = Timer(engine, lambda: None)
    timer.start(10.0)
    engine.schedule(4.0, lambda: None)
    engine.step()
    assert timer.remaining == pytest.approx(6.0)


def test_remaining_zero_when_not_pending(engine):
    timer = Timer(engine, lambda: None)
    assert timer.remaining == 0.0


def test_cancel_then_restart(engine):
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    timer.cancel()
    timer.start(2.0)
    engine.run()
    assert log == [2.0]


def test_rescheduled_timer_does_not_fire_at_original_expiry(engine):
    """The lazily-cancelled original event must not trigger the callback."""
    log = []
    timer = make_timer(engine, log)
    timer.start(1.0)
    timer.reschedule(5.0)
    engine.run(until=2.0)
    assert log == []
    engine.run()
    assert log == [5.0]


# ----------------------------------------------------------------------
# runtime timer audit
# ----------------------------------------------------------------------


class TestTimerAudit:
    def test_disabled_by_default(self, engine):
        assert engine.timer_audit is None
        timer = Timer(engine, lambda: None, name="t")
        timer.start(1.0)
        timer.cancel()
        engine.run()
        assert engine.timer_audit is None

    def test_enable_is_idempotent(self, engine):
        audit = engine.enable_timer_audit()
        assert engine.enable_timer_audit() is audit
        assert engine.timer_audit is audit

    def test_clean_lifecycle_has_no_violations(self, engine):
        audit = engine.enable_timer_audit()
        log = []
        timer = make_timer(engine, log)
        timer.start(5.0)
        timer.reschedule(2.0)
        other = Timer(engine, lambda: None, name="u")
        other.start(1.0)
        other.cancel()
        engine.run()
        assert log == [2.0]
        assert audit.verify() == []
        assert audit.pending_timers() == []
        assert audit.timers_seen == 2
        # t: arm, cancel+arm (reschedule), fire; u: arm, cancel.
        assert audit.transitions == 6

    def test_leak_when_event_cancelled_behind_timers_back(self, engine):
        audit = engine.enable_timer_audit()
        timer = Timer(engine, lambda: None, name="leaker")
        timer.start(5.0)
        timer._event.cancel()  # bypasses Timer.cancel(): the audit's leak
        engine.run()
        violations = audit.verify()
        assert [v.kind for v in violations] == ["leak"]
        assert violations[0].timer == "leaker"

    def test_double_arm_when_start_guard_bypassed(self, engine):
        audit = engine.enable_timer_audit()
        timer = Timer(engine, lambda: None, name="doubler")
        timer.start(5.0)
        timer._arm(3.0)  # bypasses the start() already-pending guard
        engine.run()
        kinds = [v.kind for v in audit.verify()]
        assert "double-arm" in kinds

    def test_unmatched_fire_on_manual_fire(self, engine):
        audit = engine.enable_timer_audit()
        log = []
        timer = make_timer(engine, log)
        timer.start(5.0)
        timer._fire()  # by hand: fires now, strands the scheduled event
        engine.run()
        kinds = [v.kind for v in audit.verify()]
        assert "unmatched-fire" in kinds

    def test_stopped_early_pending_timer_is_not_a_leak(self, engine):
        audit = engine.enable_timer_audit()
        timer = Timer(engine, lambda: None, name="pending")
        timer.start(50.0)
        engine.run(until=10.0)
        assert audit.verify() == []
        assert audit.pending_timers() == ["pending"]

    def test_verify_is_repeatable_and_ordered(self, engine):
        audit = engine.enable_timer_audit()
        first = Timer(engine, lambda: None, name="a")
        second = Timer(engine, lambda: None, name="b")
        first.start(5.0)
        second.start(5.0)
        first._event.cancel()
        second._event.cancel()
        engine.run()
        violations = audit.verify()
        assert [v.timer for v in violations] == ["a", "b"]  # first-seen order
        assert audit.verify() == violations

"""Unit tests for relationship assignment (Figure 15 substrate)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.bgp.policy import Relationship
from repro.errors import TopologyError
from repro.topology.relationships import RelationshipMap, assign_relationships


class TestRelationshipMap:
    def test_provider_customer_views(self):
        relationships = RelationshipMap()
        relationships.set_provider("isp", "cust")
        assert relationships.relationship("isp", "cust") is Relationship.CUSTOMER
        assert relationships.relationship("cust", "isp") is Relationship.PROVIDER

    def test_peer_views(self):
        relationships = RelationshipMap()
        relationships.set_peers("a", "b")
        assert relationships.relationship("a", "b") is Relationship.PEER
        assert relationships.relationship("b", "a") is Relationship.PEER

    def test_missing_relationship_raises(self):
        relationships = RelationshipMap()
        with pytest.raises(TopologyError):
            relationships.relationship("a", "b")

    def test_conflicting_provider_directions_rejected(self):
        relationships = RelationshipMap()
        relationships.set_provider("a", "b")
        with pytest.raises(TopologyError):
            relationships.set_provider("b", "a")

    def test_peer_conflicts_with_provider(self):
        relationships = RelationshipMap()
        relationships.set_provider("a", "b")
        with pytest.raises(TopologyError):
            relationships.set_peers("a", "b")
        relationships2 = RelationshipMap()
        relationships2.set_peers("a", "b")
        with pytest.raises(TopologyError):
            relationships2.set_provider("a", "b")

    def test_self_relationship_rejected(self):
        relationships = RelationshipMap()
        with pytest.raises(TopologyError):
            relationships.set_provider("a", "a")
        with pytest.raises(TopologyError):
            relationships.set_peers("a", "a")

    def test_listings(self):
        relationships = RelationshipMap()
        relationships.set_provider("isp", "c1")
        relationships.set_provider("isp", "c2")
        relationships.set_provider("tier1", "isp")
        relationships.set_peers("isp", "other")
        assert relationships.customers_of("isp") == ["c1", "c2"]
        assert relationships.providers_of("isp") == ["tier1"]
        assert relationships.peers_of("isp") == ["other"]
        assert relationships.provider_edge_count == 3
        assert relationships.peer_edge_count == 1

    def test_cycle_detection(self):
        relationships = RelationshipMap()
        relationships.set_provider("a", "b")
        relationships.set_provider("b", "c")
        relationships.set_provider("c", "a")
        with pytest.raises(TopologyError):
            relationships.validate_acyclic(["a", "b", "c"])


class TestAssignment:
    def test_every_edge_assigned(self):
        graph = nx.barabasi_albert_graph(60, 2, seed=1)
        graph = nx.relabel_nodes(graph, {i: f"as{i}" for i in graph.nodes})
        relationships = assign_relationships(graph)
        for u, v in graph.edges:
            assert relationships.has_relationship(u, v)

    def test_provider_digraph_acyclic(self):
        graph = nx.barabasi_albert_graph(80, 2, seed=2)
        graph = nx.relabel_nodes(graph, {i: f"as{i}" for i in graph.nodes})
        relationships = assign_relationships(graph)
        relationships.validate_acyclic(graph.nodes)  # must not raise

    def test_every_non_root_has_a_provider(self):
        """The BFS construction guarantees a provider chain to the root,
        which in turn guarantees valley-free reachability."""
        graph = nx.barabasi_albert_graph(60, 2, seed=3)
        graph = nx.relabel_nodes(graph, {i: f"as{i}" for i in graph.nodes})
        relationships = assign_relationships(graph, root="as0")
        orphans = [
            node
            for node in graph.nodes
            if node != "as0" and not relationships.providers_of(node)
        ]
        assert orphans == []

    def test_root_has_no_provider(self):
        graph = nx.cycle_graph(6)
        graph = nx.relabel_nodes(graph, {i: f"n{i}" for i in graph.nodes})
        relationships = assign_relationships(graph, root="n0")
        assert relationships.providers_of("n0") == []

    def test_same_depth_edges_are_peer(self):
        # A 4-cycle rooted at n0: n1 and n3 are depth 1, n2 depth 2; the
        # edges n1-n2 and n3-n2 cross depths, and there is no same-depth
        # edge. A triangle gives one: root n0, n1/n2 both depth 1.
        graph = nx.relabel_nodes(nx.complete_graph(3), {0: "n0", 1: "n1", 2: "n2"})
        relationships = assign_relationships(graph, root="n0")
        assert relationships.relationship("n1", "n2") is Relationship.PEER
        assert relationships.relationship("n0", "n1") is Relationship.CUSTOMER

    def test_default_root_is_highest_degree(self):
        graph = nx.star_graph(5)  # node 0 is the hub
        graph = nx.relabel_nodes(graph, {i: f"n{i}" for i in graph.nodes})
        relationships = assign_relationships(graph)
        assert relationships.providers_of("n0") == []
        assert len(relationships.customers_of("n0")) == 5

    def test_unknown_root_rejected(self):
        base = nx.path_graph(3)
        graph = nx.relabel_nodes(base, {i: f"n{i}" for i in base.nodes})
        with pytest.raises(TopologyError):
            assign_relationships(graph, root="ghost")

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        graph.add_edge("c", "d")
        with pytest.raises(TopologyError):
            assign_relationships(graph)

"""Unit tests for the causal trace subsystem: record serialization,
sinks, and tracer semantics."""

from __future__ import annotations

import json

import pytest

from repro.trace import (
    KNOWN_KINDS,
    TRACE_SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceRecord,
    Tracer,
    canonical_line,
    parse_jsonl,
    record_from_json,
    render_jsonl,
    trace_digest,
)

# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------


def test_schema_version_and_kinds():
    # v2 added the fault-injection kinds: fault, drop, gr_expire.
    assert TRACE_SCHEMA_VERSION == 2
    assert "charge" in KNOWN_KINDS
    assert "reuse_expired" in KNOWN_KINDS
    assert "fault" in KNOWN_KINDS
    assert "drop" in KNOWN_KINDS
    assert "gr_expire" in KNOWN_KINDS
    assert len(KNOWN_KINDS) == 13


def test_record_canonical_line_is_sorted_and_compact():
    record = TraceRecord(
        id=3, time=1.5, kind="charge", node="n1", cause_id=1, data={"b": 2, "a": 1}
    )
    line = canonical_line(record)
    # No whitespace, keys sorted, so the line is byte-stable whatever
    # order fields were supplied in.
    assert " " not in line
    assert line.index('"a"') < line.index('"b"')
    assert json.loads(line) == {
        "id": 3,
        "t": 1.5,
        "kind": "charge",
        "node": "n1",
        "cause": 1,
        "data": {"a": 1, "b": 2},
    }


def test_record_omits_empty_optionals():
    record = TraceRecord(id=1, time=0.0, kind="flap", node=None, cause_id=None, data={})
    payload = record.to_json_dict()
    assert set(payload) == {"id", "t", "kind"}


def test_record_time_rounded_to_microseconds():
    record = TraceRecord(id=1, time=1.23456789, kind="flap")
    assert record.to_json_dict()["t"] == 1.234568


def test_round_trip_through_jsonl():
    records = [
        TraceRecord(id=1, time=0.0, kind="flap", data={"pulse": 0}),
        TraceRecord(id=2, time=0.1, kind="send", node="a", cause_id=1, data={"dst": "b"}),
        TraceRecord(id=3, time=0.2, kind="recv", node="b", cause_id=2),
    ]
    document = render_jsonl(records)
    parsed = parse_jsonl(document)
    assert parsed == records
    # And re-rendering is byte-identical (canonical form is a fixpoint).
    assert render_jsonl(parsed) == document


def test_record_from_json_rejects_garbage():
    with pytest.raises(Exception):
        record_from_json({"t": 0.0, "kind": "flap"})  # no id


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------


def test_null_sink_collects_nothing():
    sink = NullSink()
    assert sink.collecting is False
    assert sink.write([]) is None


def test_memory_sink_digest_matches_document_hash():
    records = [TraceRecord(id=1, time=0.0, kind="flap")]
    sink = MemorySink()
    digest = sink.write(records)
    assert digest == trace_digest(render_jsonl(records))
    assert sink.records == records


def test_jsonl_sink_writes_canonical_document(tmp_path):
    records = [
        TraceRecord(id=1, time=0.0, kind="flap"),
        TraceRecord(id=2, time=0.5, kind="send", node="a", cause_id=1),
    ]
    path = tmp_path / "trace.jsonl"
    digest = JsonlSink(str(path)).write(records)
    document = path.read_text(encoding="utf-8")
    assert document == render_jsonl(records)
    assert digest == trace_digest(document)
    assert len(document.splitlines()) == 2


def test_empty_trace_digest_is_empty_document_hash():
    # Zero-pulse episodes legitimately produce empty traces; their digest
    # is the SHA-256 of the empty string, not an error.
    assert trace_digest("") == (
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    )


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------


def test_tracer_assigns_monotonic_ids_and_threads_context():
    tracer = Tracer(MemorySink())
    first = tracer.emit("flap", 0.0)
    tracer.set_context(first)
    # Instrumented components pass the ambient context as the cause.
    second = tracer.emit(
        "charge", 0.1, node="n1", cause=tracer.context, peer="p", charged=True
    )
    assert (first, second) == (1, 2)
    assert tracer.records[1].cause_id == first
    assert tracer.records[1].data["peer"] == "p"


def test_tracer_kind_and_time_never_collide_with_data_fields():
    # `kind` is a legitimate data field (charge records carry the update
    # kind); emit's own parameters are positional-only so it can pass.
    tracer = Tracer(MemorySink())
    rid = tracer.emit("charge", 0.0, kind="withdrawal", time=3.0)
    assert tracer.records[rid - 1].kind == "charge"
    assert tracer.records[rid - 1].data == {"kind": "withdrawal", "time": 3.0}


def test_tracer_amend_updates_record_data():
    tracer = Tracer(MemorySink())
    rid = tracer.emit("reuse_expired", 5.0, noisy=False)
    tracer.amend(rid, noisy=True)
    assert tracer.records[rid - 1].data["noisy"] is True


def test_tracer_close_is_idempotent_and_returns_digest():
    tracer = Tracer(MemorySink())
    tracer.emit("flap", 0.0)
    digest = tracer.close()
    assert digest is not None
    assert tracer.close() == digest


def test_disabled_tracer_attach_is_noop():
    from repro.sim.engine import Engine

    tracer = Tracer(NullSink())
    assert tracer.enabled is False
    engine = Engine()
    tracer.attach(engine, network=None, routers=[])
    # The engine must keep its uninstrumented fast path.
    assert engine._instrumented is False


def test_event_hook_instruments_engine():
    from repro.sim.engine import Engine

    engine = Engine()
    seen = []
    engine.set_event_hook(seen.append)
    assert engine._instrumented is True
    engine.schedule(1.0, lambda: None)
    engine.run()
    assert len(seen) == 1
    engine.set_event_hook(None)
    assert engine._instrumented is False

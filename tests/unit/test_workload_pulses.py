"""Unit tests for pulse schedules."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.workload.pulses import PulseSchedule


def test_regular_schedule_structure():
    schedule = PulseSchedule.regular(2, 60.0)
    assert schedule.events == (
        (0.0, "down"),
        (60.0, "up"),
        (120.0, "down"),
        (180.0, "up"),
    )
    assert schedule.pulse_count == 2
    assert len(schedule) == 4


def test_regular_zero_pulses():
    schedule = PulseSchedule.regular(0)
    assert schedule.events == ()
    assert schedule.pulse_count == 0
    assert schedule.duration == 0.0


def test_final_event_is_announcement():
    schedule = PulseSchedule.regular(3, 30.0)
    assert schedule.events[-1][1] == "up"
    assert schedule.final_announcement_offset == schedule.duration


def test_duration():
    assert PulseSchedule.regular(3, 60.0).duration == 300.0


def test_from_events_custom_spacing():
    schedule = PulseSchedule.from_events([(0.0, "down"), (5.0, "up"), (100.0, "down"), (101.0, "up")])
    assert schedule.pulse_count == 2
    assert schedule.final_announcement_offset == 101.0


def test_must_end_with_up():
    with pytest.raises(ConfigurationError):
        PulseSchedule.from_events([(0.0, "down")])


def test_events_strictly_increasing():
    with pytest.raises(ConfigurationError):
        PulseSchedule.from_events([(0.0, "down"), (0.0, "up")])
    with pytest.raises(ConfigurationError):
        PulseSchedule.from_events([(10.0, "down"), (5.0, "up")])


def test_bad_status_rejected():
    with pytest.raises(ConfigurationError):
        PulseSchedule.from_events([(0.0, "sideways")])


def test_negative_offset_rejected():
    with pytest.raises(ConfigurationError):
        PulseSchedule.from_events([(-1.0, "up")])


def test_validation_of_regular_args():
    with pytest.raises(ConfigurationError):
        PulseSchedule.regular(-1)
    with pytest.raises(ConfigurationError):
        PulseSchedule.regular(1, 0.0)

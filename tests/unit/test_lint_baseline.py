"""Edge-case tests for lint baseline record/compare (``repro.lint.baseline``).

The happy path (round-trip, demotion, excess-stays-active) lives in
``test_lint_rules.py``; this file covers the corners that bite in real
use: baseline entries whose file no longer exists, suppression
directives sitting on a continuation line of a multi-line construct,
and comparing against an empty baseline.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    apply_baseline,
    baseline_counts,
    lint_source,
    parse_baseline,
    render_baseline,
)


def report_for(source: str, path: str = "fixture.py"):
    return lint_source(
        textwrap.dedent(source), path=path, module="repro.sim.fixture"
    )


WALL_CLOCK = """
    import time

    def stamp():
        return time.time()
    """


class TestDeletedFileEntries:
    def test_stale_entry_for_deleted_file_is_ignored(self):
        # The baseline froze findings for a file that has since been
        # removed from the tree: applying it must neither crash nor
        # resurrect the ghost findings.
        report = report_for(WALL_CLOCK, path="kept.py")
        stale_key = "deleted.py::DET001::wall-clock read"
        filtered = apply_baseline(report, {stale_key: 3})
        assert [f.path for f in filtered.findings] == ["kept.py"]
        assert filtered.baselined == []
        assert not filtered.ok  # the live finding still fails the run

    def test_stale_entry_does_not_eat_other_files_budget(self):
        # Budgets are per-key: a deleted file's count must not absorb a
        # same-rule finding from a file that still exists.
        report = report_for(WALL_CLOCK, path="kept.py")
        live_key = report.findings[0].baseline_key
        stale_key = live_key.replace("kept.py", "deleted.py")
        assert stale_key != live_key
        filtered = apply_baseline(report, {stale_key: 1})
        assert len(filtered.findings) == 1
        filtered = apply_baseline(report, {stale_key: 1, live_key: 1})
        assert filtered.findings == []
        assert len(filtered.baselined) == 1


class TestContinuationLineSuppressions:
    SOURCE = """
        import time

        def stamps():
            return (
                time.time(),  # detlint: disable=DET001
                1.0,
            )
        """

    def test_directive_on_continuation_line_suppresses(self):
        # The finding anchors at the call's first line, but the directive
        # sits on a later physical line of the same construct; the
        # construct-scoped window must still cover it.
        report = report_for(self.SOURCE)
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["DET001"]

    def test_suppressed_finding_never_reaches_the_baseline(self):
        # render_baseline serialises *active* findings only, so a
        # suppressed finding must not occupy a baseline budget slot.
        report = report_for(self.SOURCE)
        assert parse_baseline(render_baseline(report)) == {}

    def test_baseline_key_unchanged_by_continuation_layout(self):
        # Reflowing a construct across lines must not invalidate its
        # baseline entry: keys are line-independent.
        folded = report_for(
            """
            import time

            def stamps():
                return time.time()
            """
        )
        spread = report_for(
            """
            import time

            def stamps():
                return (
                    time
                    .time()
                )
            """
        )
        assert baseline_counts(folded.findings) == baseline_counts(
            spread.findings
        )


class TestEmptyBaseline:
    def test_compare_against_empty_baseline_keeps_all_findings(self):
        empty = parse_baseline(
            json.dumps({"version": 1, "findings": {}})
        )
        assert empty == {}
        report = report_for(WALL_CLOCK)
        filtered = apply_baseline(report, empty)
        assert len(filtered.findings) == len(report.findings) == 1
        assert filtered.baselined == []
        assert not filtered.ok

    def test_empty_baseline_of_clean_tree_round_trips(self):
        report = report_for(
            """
            def stamp(engine):
                return engine.now
            """
        )
        assert report.findings == []
        assert parse_baseline(render_baseline(report)) == {}

    def test_missing_findings_mapping_is_rejected(self):
        with pytest.raises(ConfigurationError, match="findings"):
            parse_baseline(json.dumps({"version": 1}))

"""Unit tests for named random streams."""

from __future__ import annotations

from repro.sim.rng import RngRegistry


def test_same_name_same_stream_object():
    registry = RngRegistry(1)
    assert registry.stream("a") is registry.stream("a")


def test_same_seed_same_sequence():
    a = RngRegistry(99).stream("mrai")
    b = RngRegistry(99).stream("mrai")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_different_sequences():
    registry = RngRegistry(99)
    seq_a = [registry.stream("a").random() for _ in range(5)]
    seq_b = [registry.stream("b").random() for _ in range(5)]
    assert seq_a != seq_b


def test_different_seeds_different_sequences():
    a = [RngRegistry(1).stream("x").random() for _ in range(5)]
    b = [RngRegistry(2).stream("x").random() for _ in range(5)]
    assert a != b


def test_stream_independent_of_creation_order():
    registry1 = RngRegistry(5)
    registry1.stream("first")
    value1 = registry1.stream("second").random()
    registry2 = RngRegistry(5)
    value2 = registry2.stream("second").random()
    assert value1 == value2


def test_uniform_within_bounds():
    registry = RngRegistry(3)
    for _ in range(100):
        value = registry.uniform("jitter", 0.75, 1.0)
        assert 0.75 <= value <= 1.0


def test_fork_is_deterministic():
    a = RngRegistry(7).fork("run-1")
    b = RngRegistry(7).fork("run-1")
    assert a.master_seed == b.master_seed


def test_fork_differs_from_parent_and_sibling():
    parent = RngRegistry(7)
    child1 = parent.fork("run-1")
    child2 = parent.fork("run-2")
    assert child1.master_seed != parent.master_seed
    assert child1.master_seed != child2.master_seed


def test_master_seed_property():
    assert RngRegistry(42).master_seed == 42


# ----------------------------------------------------------------------
# compact stream pickling
# ----------------------------------------------------------------------


def test_fresh_stream_pickles_tiny_and_exact():
    import pickle

    stream = RngRegistry(42).stream("mrai")
    blob = pickle.dumps(stream, protocol=pickle.HIGHEST_PROTOCOL)
    # A raw Mersenne Twister state pickles to ~3.7 KB; the compact
    # encoding of an unused stream is just (seed, replay 0 words).
    assert len(blob) < 200
    clone = pickle.loads(blob)
    assert clone.getstate() == stream.getstate()


def test_partially_consumed_stream_roundtrips_exactly():
    import pickle

    stream = RngRegistry(42).stream("jitter")
    # Mixed draw kinds, like real consumers: each consumes generator
    # words differently, and all must be captured by the word count.
    stream.random()
    stream.uniform(0.0, 1.0)
    stream.getrandbits(64)
    stream.choice(range(100))
    clone = pickle.loads(pickle.dumps(stream, protocol=pickle.HIGHEST_PROTOCOL))
    assert clone.getstate() == stream.getstate()
    assert [clone.random() for _ in range(50)] == [
        stream.random() for _ in range(50)
    ]


def test_gauss_carry_state_survives_pickling():
    import pickle

    stream = RngRegistry(7).stream("gauss")
    stream.gauss(0.0, 1.0)  # leaves a cached second sample in gauss_next
    clone = pickle.loads(pickle.dumps(stream, protocol=pickle.HIGHEST_PROTOCOL))
    assert clone.getstate() == stream.getstate()
    assert clone.gauss(0.0, 1.0) == stream.gauss(0.0, 1.0)


def test_heavily_drawn_stream_falls_back_to_raw_state():
    import pickle

    from repro.sim.rng import _MAX_REPLAY_BLOCKS, _MT_BLOCK_WORDS

    stream = RngRegistry(11).stream("hot")
    # Consume past the replay-search bound so the encoder must store the
    # packed raw state instead of a word count.
    for _ in range((_MAX_REPLAY_BLOCKS + 1) * _MT_BLOCK_WORDS):
        stream.getrandbits(32)
    clone = pickle.loads(pickle.dumps(stream, protocol=pickle.HIGHEST_PROTOCOL))
    assert clone.getstate() == stream.getstate()
    assert [clone.random() for _ in range(20)] == [
        stream.random() for _ in range(20)
    ]


def test_deepcopy_goes_through_compact_encoding():
    import copy

    stream = RngRegistry(3).stream("copy")
    stream.random()
    clone = copy.deepcopy(stream)
    assert clone is not stream
    assert clone.getstate() == stream.getstate()
    assert clone.random() == stream.random()

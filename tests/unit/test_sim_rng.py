"""Unit tests for named random streams."""

from __future__ import annotations

from repro.sim.rng import RngRegistry


def test_same_name_same_stream_object():
    registry = RngRegistry(1)
    assert registry.stream("a") is registry.stream("a")


def test_same_seed_same_sequence():
    a = RngRegistry(99).stream("mrai")
    b = RngRegistry(99).stream("mrai")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_different_sequences():
    registry = RngRegistry(99)
    seq_a = [registry.stream("a").random() for _ in range(5)]
    seq_b = [registry.stream("b").random() for _ in range(5)]
    assert seq_a != seq_b


def test_different_seeds_different_sequences():
    a = [RngRegistry(1).stream("x").random() for _ in range(5)]
    b = [RngRegistry(2).stream("x").random() for _ in range(5)]
    assert a != b


def test_stream_independent_of_creation_order():
    registry1 = RngRegistry(5)
    registry1.stream("first")
    value1 = registry1.stream("second").random()
    registry2 = RngRegistry(5)
    value2 = registry2.stream("second").random()
    assert value1 == value2


def test_uniform_within_bounds():
    registry = RngRegistry(3)
    for _ in range(100):
        value = registry.uniform("jitter", 0.75, 1.0)
        assert 0.75 <= value <= 1.0


def test_fork_is_deterministic():
    a = RngRegistry(7).fork("run-1")
    b = RngRegistry(7).fork("run-1")
    assert a.master_seed == b.master_seed


def test_fork_differs_from_parent_and_sibling():
    parent = RngRegistry(7)
    child1 = parent.fork("run-1")
    child2 = parent.fork("run-2")
    assert child1.master_seed != parent.master_seed
    assert child1.master_seed != child2.master_seed


def test_master_seed_property():
    assert RngRegistry(42).master_seed == 42

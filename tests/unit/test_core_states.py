"""Unit tests for the four-state phase classifier."""

from __future__ import annotations

from repro.core.states import (
    DampingPhase,
    classify_phases,
    phase_durations,
    releasing_fraction,
    suppressed_count_function,
)


def test_no_updates_is_converged():
    intervals = classify_phases([], [0.0], end_time=100.0)
    assert len(intervals) == 1
    assert intervals[0].phase is DampingPhase.CONVERGED


def test_single_burst_is_charging_then_converged():
    updates = [1.0, 2.0, 5.0, 10.0]
    intervals = classify_phases(updates, [0.0], end_time=500.0)
    assert intervals[0].phase is DampingPhase.CHARGING
    assert intervals[0].start == 0.0
    assert intervals[-1].phase is DampingPhase.CONVERGED


def test_charging_suppression_releasing_converged():
    """The canonical n=1 shape: burst, long quiet with suppressed links,
    late burst, quiet tail."""
    updates = [1.0, 5.0, 20.0, 50.0] + [1500.0, 1510.0, 1520.0]
    deltas = [(20.0, +1), (30.0, +1), (1500.0, -1), (1510.0, -1)]
    count_at = suppressed_count_function(deltas)
    intervals = classify_phases(
        updates, [0.0, 60.0], end_time=3000.0, suppressed_count_at=count_at
    )
    phases = [interval.phase for interval in intervals]
    assert phases == [
        DampingPhase.CHARGING,
        DampingPhase.SUPPRESSION,
        DampingPhase.RELEASING,
        DampingPhase.CONVERGED,
    ]


def test_quiet_gap_without_suppression_is_converged():
    updates = [1.0, 5.0] + [500.0, 505.0]
    count_at = suppressed_count_function([])
    intervals = classify_phases(
        updates, [0.0], end_time=1000.0, suppressed_count_at=count_at
    )
    phases = [interval.phase for interval in intervals]
    assert DampingPhase.SUPPRESSION not in phases
    assert phases.count(DampingPhase.CONVERGED) >= 1


def test_multiple_releasing_waves():
    updates = [1.0] + [1000.0, 1010.0] + [2000.0, 2010.0]
    deltas = [(1.0, +1), (2500.0, -1)]
    count_at = suppressed_count_function(deltas)
    intervals = classify_phases(
        updates, [0.0], end_time=3000.0, suppressed_count_at=count_at
    )
    releasing = [i for i in intervals if i.phase is DampingPhase.RELEASING]
    assert len(releasing) == 2


def test_bursts_during_flapping_merge_into_charging():
    """With 3 pulses 120s apart, the per-pulse bursts are one charging
    phase even though they are separated by >gap quiet."""
    updates = [1.0, 2.0, 121.0, 122.0, 241.0, 242.0]
    intervals = classify_phases(
        updates, [0.0, 60.0, 120.0, 180.0, 240.0, 300.0], end_time=1000.0, gap=60.0
    )
    charging = [i for i in intervals if i.phase is DampingPhase.CHARGING]
    assert len(charging) == 1
    assert charging[0].end >= 242.0


def test_phase_durations_sum():
    updates = [1.0, 5.0, 500.0]
    intervals = classify_phases(updates, [0.0], end_time=1000.0)
    durations = phase_durations(intervals)
    assert sum(durations.values()) > 0


def test_releasing_fraction_zero_without_releasing():
    updates = [1.0, 2.0]
    intervals = classify_phases(updates, [0.0], end_time=100.0)
    assert releasing_fraction(intervals) == 0.0


def test_suppressed_count_function_steps():
    count_at = suppressed_count_function([(1.0, +1), (2.0, +1), (3.0, -1)])
    assert count_at(0.5) == 0
    assert count_at(1.0) == 1
    assert count_at(2.5) == 2
    assert count_at(3.5) == 1


def test_interval_duration():
    intervals = classify_phases([1.0], [0.0], end_time=10.0)
    assert all(interval.duration >= 0 for interval in intervals)
    assert intervals[-1].end == 10.0

"""Unit tests for the CI perf-regression gate (benchmarks/compare_perf.py).

The script lives outside the package (benchmarks/ is not importable),
so it is loaded via an importlib spec from its file path.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "compare_perf.py"
)


@pytest.fixture(scope="module")
def compare_perf():
    spec = importlib.util.spec_from_file_location("compare_perf", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _perf_file(tmp_path, name, benchmarks):
    path = tmp_path / name
    path.write_text(
        json.dumps({"schema": 1, "benchmarks": benchmarks}), encoding="utf-8"
    )
    return str(path)


def test_identical_files_pass(compare_perf, tmp_path, capsys):
    benchmarks = {"engine": {"seconds": 0.02}, "episode": {"seconds": 1.5}}
    baseline = _perf_file(tmp_path, "base.json", benchmarks)
    current = _perf_file(tmp_path, "cur.json", benchmarks)
    assert compare_perf.main(["--baseline", baseline, "--current", current]) == 0
    out = capsys.readouterr().out
    assert "| engine |" in out
    assert "ok" in out


def test_injected_2x_slowdown_fails(compare_perf, tmp_path, capsys):
    baseline = _perf_file(tmp_path, "base.json", {"engine": {"seconds": 0.02}})
    current = _perf_file(tmp_path, "cur.json", {"engine": {"seconds": 0.04}})
    assert compare_perf.main(["--baseline", baseline, "--current", current]) == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    assert "engine" in captured.err


def test_threshold_is_respected(compare_perf, tmp_path):
    baseline = _perf_file(tmp_path, "base.json", {"engine": {"seconds": 0.02}})
    current = _perf_file(tmp_path, "cur.json", {"engine": {"seconds": 0.024}})
    # 1.2x the baseline: inside the default 1.25x gate...
    assert compare_perf.main(["--baseline", baseline, "--current", current]) == 0
    # ...but outside a tightened one.
    assert (
        compare_perf.main(
            ["--baseline", baseline, "--current", current, "--threshold", "1.1"]
        )
        == 1
    )


def test_new_and_removed_benchmarks_never_fail(compare_perf, tmp_path, capsys):
    baseline = _perf_file(tmp_path, "base.json", {"old": {"seconds": 1.0}})
    current = _perf_file(tmp_path, "cur.json", {"new": {"seconds": 1.0}})
    assert compare_perf.main(["--baseline", baseline, "--current", current]) == 0
    out = capsys.readouterr().out
    assert "| new |" in out and "| old |" in out
    assert "removed" in out


def test_summary_file_receives_markdown_table(compare_perf, tmp_path):
    benchmarks = {"engine": {"seconds": 0.02}}
    baseline = _perf_file(tmp_path, "base.json", benchmarks)
    current = _perf_file(tmp_path, "cur.json", benchmarks)
    summary = tmp_path / "summary.md"
    assert (
        compare_perf.main(
            ["--baseline", baseline, "--current", current, "--summary", str(summary)]
        )
        == 0
    )
    text = summary.read_text(encoding="utf-8")
    assert text.startswith("### Perf gate")
    assert "| engine |" in text


def test_missing_baseline_is_a_distinct_error(compare_perf, tmp_path, capsys):
    current = _perf_file(tmp_path, "cur.json", {"engine": {"seconds": 0.02}})
    code = compare_perf.main(
        ["--baseline", str(tmp_path / "absent.json"), "--current", current]
    )
    assert code == 2
    assert "compare_perf:" in capsys.readouterr().err


def _perf_file_with_host(tmp_path, name, benchmarks, host):
    path = tmp_path / name
    path.write_text(
        json.dumps({"schema": 1, "host": host, "benchmarks": benchmarks}),
        encoding="utf-8",
    )
    return str(path)


def test_parallel_entries_from_different_core_counts_are_incomparable(
    compare_perf, tmp_path, capsys
):
    """A jobs=2 number recorded on 1 CPU vs 2 CPUs is not a regression
    (or an improvement) — it is two different experiments."""
    baseline = _perf_file(
        tmp_path, "base.json", {"sweep": {"seconds": 4.0, "cpu_count": 1}}
    )
    current = _perf_file(
        tmp_path, "cur.json", {"sweep": {"seconds": 9.0, "cpu_count": 2}}
    )
    # 2.25x slower would normally fail; differing core counts must not.
    assert compare_perf.main(["--baseline", baseline, "--current", current]) == 0
    out = capsys.readouterr().out
    assert "incomparable (cpu_count 1 vs 2)" in out


def test_same_core_count_parallel_entries_still_gate(compare_perf, tmp_path):
    baseline = _perf_file(
        tmp_path, "base.json", {"sweep": {"seconds": 4.0, "cpu_count": 2}}
    )
    current = _perf_file(
        tmp_path, "cur.json", {"sweep": {"seconds": 9.0, "cpu_count": 2}}
    )
    assert compare_perf.main(["--baseline", baseline, "--current", current]) == 1


def test_min_speedup_gate_fails_when_parallel_loses(compare_perf, tmp_path, capsys):
    benchmarks = {
        "sweep": {"seconds": 2.0, "cpu_count": 2, "speedup_vs_sequential": 0.8}
    }
    baseline = _perf_file(tmp_path, "base.json", benchmarks)
    current = _perf_file(tmp_path, "cur.json", benchmarks)
    code = compare_perf.main(
        [
            "--baseline", baseline,
            "--current", current,
            "--min-speedup", "sweep=1.0",
        ]
    )
    assert code == 1
    assert "0.80 is below the required 1.00" in capsys.readouterr().err


def test_min_speedup_gate_passes_and_reports(compare_perf, tmp_path, capsys):
    benchmarks = {
        "sweep": {"seconds": 2.0, "cpu_count": 2, "speedup_vs_sequential": 1.4}
    }
    baseline = _perf_file(tmp_path, "base.json", benchmarks)
    current = _perf_file(tmp_path, "cur.json", benchmarks)
    code = compare_perf.main(
        [
            "--baseline", baseline,
            "--current", current,
            "--min-speedup", "sweep=1.0",
        ]
    )
    assert code == 0
    assert "1.40 >= 1.00" in capsys.readouterr().out


def test_min_speedup_gate_skips_on_single_core_hosts(compare_perf, tmp_path, capsys):
    """The committed perf.json may come from a 1-CPU box, where parallel
    >= sequential is unsatisfiable; the gate must skip loudly, not fail."""
    benchmarks = {
        "sweep": {"seconds": 2.0, "cpu_count": 1, "speedup_vs_sequential": 0.9}
    }
    baseline = _perf_file(tmp_path, "base.json", benchmarks)
    current = _perf_file(tmp_path, "cur.json", benchmarks)
    code = compare_perf.main(
        [
            "--baseline", baseline,
            "--current", current,
            "--min-speedup", "sweep=1.0",
        ]
    )
    assert code == 0
    assert "speedup gate skipped" in capsys.readouterr().out


def test_min_speedup_gate_fails_on_missing_benchmark(compare_perf, tmp_path, capsys):
    benchmarks = {"other": {"seconds": 1.0}}
    baseline = _perf_file(tmp_path, "base.json", benchmarks)
    current = _perf_file(tmp_path, "cur.json", benchmarks)
    code = compare_perf.main(
        [
            "--baseline", baseline,
            "--current", current,
            "--min-speedup", "sweep=1.0",
        ]
    )
    assert code == 1
    assert "no such benchmark" in capsys.readouterr().err


def test_min_speedup_rejects_malformed_spec(compare_perf, tmp_path, capsys):
    benchmarks = {"sweep": {"seconds": 1.0}}
    baseline = _perf_file(tmp_path, "base.json", benchmarks)
    current = _perf_file(tmp_path, "cur.json", benchmarks)
    code = compare_perf.main(
        ["--baseline", baseline, "--current", current, "--min-speedup", "nonsense"]
    )
    assert code == 2
    assert "NAME=RATIO" in capsys.readouterr().err

"""Unit tests for AS-path interning (repro.bgp.paths.PathTable)."""

from __future__ import annotations

import pickle

import pytest

from repro.bgp.attrs import Route
from repro.bgp.paths import PathTable, global_path_table, intern_path


def test_intern_assigns_dense_ids():
    table = PathTable()
    a = table.intern(("as1", "as2"))
    b = table.intern(("as1", "as2", "as3"))
    c = table.intern(("as1", "as2"))
    assert a == 0
    assert b == 1
    assert c == a
    assert len(table) == 2


def test_intern_resolve_round_trip():
    table = PathTable()
    paths = [("as1",), ("as1", "as2"), (), ("as9", "as8", "as7")]
    ids = [table.intern(p) for p in paths]
    assert [table.resolve(i) for i in ids] == paths


def test_canonical_returns_one_shared_tuple_per_value():
    table = PathTable()
    first = table.canonical(tuple(["as1", "as2"]))
    second = table.canonical(tuple(["as1", "as2"]))
    assert first is second


def test_id_of_and_contains():
    table = PathTable()
    path = ("as1", "as2")
    assert path not in table
    with pytest.raises(KeyError):
        table.id_of(path)
    pid = table.intern(path)
    assert path in table
    assert table.id_of(path) == pid


def test_resolve_unknown_id_raises():
    table = PathTable()
    with pytest.raises(IndexError):
        table.resolve(0)


def test_stats_counts_paths_and_hops():
    table = PathTable()
    table.intern(("as1",))
    table.intern(("as1", "as2", "as3"))
    stats = table.stats()
    assert stats["paths"] == 2
    assert stats["hops"] == 4


def test_pickle_preserves_ids_and_contents():
    table = PathTable()
    ids = {p: table.intern(p) for p in [("as1",), ("as1", "as2"), ("as3",)]}
    clone = pickle.loads(pickle.dumps(table))
    assert len(clone) == len(table)
    for path, pid in ids.items():
        assert clone.id_of(path) == pid
        assert clone.resolve(pid) == path
    # A clone keeps accepting new paths with the next dense id.
    assert clone.intern(("as4",)) == len(ids)


def test_global_intern_path_deduplicates():
    a = intern_path(("as77", "as78"))
    b = intern_path(("as77", "as78"))
    assert a is b
    assert ("as77", "as78") in global_path_table()


def test_routes_with_equal_paths_share_the_tuple():
    first = Route(prefix="10.0.0.0/8", as_path=("as1", "as2"), learned_from="as1")
    second = Route(prefix="10.1.0.0/8", as_path=("as1", "as2"), learned_from="as1")
    assert first.as_path is second.as_path
    assert first.same_attributes(
        Route(prefix="10.0.0.0/8", as_path=("as1", "as2"), learned_from="as1")
    )

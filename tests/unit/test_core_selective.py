"""Unit tests for the selective-damping comparator (Mao et al.)."""

from __future__ import annotations

from repro.core.params import UpdateKind
from repro.core.selective import (
    RelativePreference,
    SelectiveDampingFilter,
    compare_paths,
)


def test_compare_paths_first_announcement():
    pref = compare_paths(None, 3)
    assert pref.direction == 0
    assert pref.path_length == 3


def test_compare_paths_worse():
    assert compare_paths(3, 5).direction == -1


def test_compare_paths_better():
    assert compare_paths(5, 3).direction == 1


def test_compare_paths_equal():
    assert compare_paths(4, 4).direction == 0


def test_withdrawals_always_charge():
    selective = SelectiveDampingFilter()
    assert selective.should_charge("p", UpdateKind.WITHDRAWAL, None) is True
    assert selective.charged_count == 1


def test_exploration_announcements_filtered():
    """Monotonically worsening announcements look like path exploration."""
    selective = SelectiveDampingFilter()
    selective.should_charge(
        "p", UpdateKind.ATTRIBUTE_CHANGE, RelativePreference(0, 3)
    )
    charged = selective.should_charge(
        "p", UpdateKind.ATTRIBUTE_CHANGE, RelativePreference(-1, 5)
    )
    assert charged is False
    assert selective.filtered_count == 1


def test_improvement_announcements_charge():
    """A route coming back better (e.g. after reuse) is charged — the
    blind spot that leaves secondary charging intact."""
    selective = SelectiveDampingFilter()
    selective.should_charge(
        "p", UpdateKind.ATTRIBUTE_CHANGE, RelativePreference(0, 5)
    )
    charged = selective.should_charge(
        "p", UpdateKind.REANNOUNCEMENT, RelativePreference(1, 3)
    )
    assert charged is True


def test_untagged_announcements_charge():
    selective = SelectiveDampingFilter()
    assert selective.should_charge("p", UpdateKind.ATTRIBUTE_CHANGE, None) is True


def test_inconsistent_worse_claim_charges():
    """A 'worse' tag whose path is actually shorter than the last one is
    rejected by the receiver-side consistency check."""
    selective = SelectiveDampingFilter()
    selective.should_charge(
        "p", UpdateKind.ATTRIBUTE_CHANGE, RelativePreference(0, 5)
    )
    charged = selective.should_charge(
        "p", UpdateKind.ATTRIBUTE_CHANGE, RelativePreference(-1, 3)
    )
    assert charged is True


def test_state_is_per_peer():
    selective = SelectiveDampingFilter()
    selective.should_charge("a", UpdateKind.ATTRIBUTE_CHANGE, RelativePreference(0, 3))
    # peer b has no history: a 'worse' claim is consistent by default.
    charged = selective.should_charge(
        "b", UpdateKind.ATTRIBUTE_CHANGE, RelativePreference(-1, 9)
    )
    assert charged is False


def test_withdrawal_resets_peer_history():
    selective = SelectiveDampingFilter()
    selective.should_charge("p", UpdateKind.ATTRIBUTE_CHANGE, RelativePreference(0, 3))
    selective.should_charge("p", UpdateKind.WITHDRAWAL, None)
    # After the withdrawal, a worse-tagged announcement is consistent again.
    charged = selective.should_charge(
        "p", UpdateKind.REANNOUNCEMENT, RelativePreference(-1, 4)
    )
    assert charged is False


def test_clear():
    selective = SelectiveDampingFilter()
    selective.should_charge("p", UpdateKind.WITHDRAWAL, None)
    selective.clear()
    assert selective.charged_count == 0
    assert selective.filtered_count == 0

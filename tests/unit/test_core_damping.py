"""Unit tests for the DampingManager suppress/reuse state machine."""

from __future__ import annotations

import pytest

from repro.core.damping import DampingManager
from repro.core.params import CISCO_DEFAULTS, UpdateKind
from repro.sim.engine import Engine


class ReuseProbe:
    """Records reuse callbacks and returns a scripted noisy flag."""

    def __init__(self, noisy: bool = True) -> None:
        self.noisy = noisy
        self.calls = []

    def __call__(self, peer: str, prefix: str) -> bool:
        self.calls.append((peer, prefix))
        return self.noisy


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def probe():
    return ReuseProbe()


@pytest.fixture
def manager(engine, probe):
    return DampingManager(engine, CISCO_DEFAULTS, "r1", probe)


def charge_to_suppression(engine, manager, peer="p", prefix="d"):
    """Three quick withdrawals push the penalty over the Cisco cutoff."""
    for _ in range(3):
        outcome = manager.record_update(peer, prefix, UpdateKind.WITHDRAWAL)
    return outcome


def test_fresh_entry_not_suppressed(manager):
    assert not manager.is_suppressed("p", "d")
    assert manager.penalty_value("p", "d") == 0.0


def test_single_withdrawal_does_not_suppress(manager):
    outcome = manager.record_update("p", "d", UpdateKind.WITHDRAWAL)
    assert outcome.penalty == 1000.0
    assert not outcome.suppressed
    assert not outcome.newly_suppressed


def test_crossing_cutoff_suppresses(engine, manager):
    outcome = charge_to_suppression(engine, manager)
    assert outcome.newly_suppressed
    assert outcome.suppressed
    assert manager.is_suppressed("p", "d")
    assert manager.suppressed_entries() == [("p", "d")]


def test_suppression_sets_reuse_timer_at_decay_horizon(engine, manager):
    outcome = charge_to_suppression(engine, manager)
    expiry = manager.reuse_timer_expiry("p", "d")
    expected = engine.now + CISCO_DEFAULTS.reuse_delay(outcome.penalty)
    assert expiry == pytest.approx(expected)


def test_reuse_timer_fires_and_unsuppresses(engine, manager, probe):
    charge_to_suppression(engine, manager)
    engine.run()
    assert not manager.is_suppressed("p", "d")
    assert probe.calls == [("p", "d")]
    assert len(manager.reuse_events) == 1
    assert manager.reuse_events[0].noisy is True


def test_silent_reuse_recorded(engine):
    probe = ReuseProbe(noisy=False)
    manager = DampingManager(engine, CISCO_DEFAULTS, "r1", probe)
    charge_to_suppression(engine, manager)
    engine.run()
    assert manager.reuse_events[0].noisy is False
    assert manager.suppressions[0].noisy_reuse is False


def test_charge_during_suppression_reschedules_timer(engine, manager):
    charge_to_suppression(engine, manager)
    before = manager.reuse_timer_expiry("p", "d")
    outcome = manager.record_update("p", "d", UpdateKind.WITHDRAWAL)
    after = manager.reuse_timer_expiry("p", "d")
    assert outcome.rescheduled_reuse
    assert after > before
    assert manager.suppressions[0].recharges == [engine.now]


def test_uncharged_update_during_suppression_keeps_timer(engine, manager):
    """RCN-filtered updates must not postpone the reuse timer."""
    charge_to_suppression(engine, manager)
    before = manager.reuse_timer_expiry("p", "d")
    outcome = manager.record_update("p", "d", UpdateKind.WITHDRAWAL, charge=False)
    assert not outcome.rescheduled_reuse
    assert manager.reuse_timer_expiry("p", "d") == before
    assert manager.suppressions[0].recharges == []


def test_uncharged_update_does_not_change_penalty(engine, manager):
    manager.record_update("p", "d", UpdateKind.WITHDRAWAL)
    value = manager.penalty_value("p", "d")
    outcome = manager.record_update("p", "d", UpdateKind.WITHDRAWAL, charge=False)
    assert outcome.penalty == pytest.approx(value)
    assert not outcome.charged


def test_penalty_decays_between_updates(engine, manager):
    manager.record_update("p", "d", UpdateKind.WITHDRAWAL)
    engine.schedule(CISCO_DEFAULTS.half_life, lambda: None)
    engine.run()
    assert manager.penalty_value("p", "d") == pytest.approx(500.0)


def test_suppression_record_lifecycle(engine, manager):
    charge_to_suppression(engine, manager)
    record = manager.suppressions[0]
    assert record.peer == "p"
    assert record.started == engine.now
    assert record.ended is None
    engine.run()
    assert record.ended is not None
    assert record.duration == pytest.approx(
        CISCO_DEFAULTS.reuse_delay(record.penalty_at_start), rel=1e-6
    )


def test_max_hold_down_bounds_suppression(engine, manager):
    """Even an absurd number of flaps cannot suppress past max hold-down."""
    for _ in range(100):
        manager.record_update("p", "d", UpdateKind.WITHDRAWAL)
    expiry = manager.reuse_timer_expiry("p", "d")
    assert expiry <= engine.now + CISCO_DEFAULTS.max_hold_down + 1e-6


def test_entries_are_per_peer_and_prefix(manager):
    charge_to_suppression(None, manager, peer="p1", prefix="d")
    assert manager.is_suppressed("p1", "d")
    assert not manager.is_suppressed("p2", "d")
    assert not manager.is_suppressed("p1", "other")


def test_suppression_observers_notified(engine, manager):
    events = []
    manager.suppression_observers.append(
        lambda time, peer, prefix, on: events.append((time, peer, prefix, on))
    )
    charge_to_suppression(engine, manager)
    engine.run()
    assert events[0][3] is True
    assert events[1][3] is False
    assert events[0][1] == "p"


def test_pending_reuse_timers_listing(engine, manager):
    charge_to_suppression(engine, manager, peer="p1")
    charge_to_suppression(engine, manager, peer="p2")
    timers = dict(manager.pending_reuse_timers())
    assert set(timers) == {("p1", "d"), ("p2", "d")}


def test_reuse_timer_expiry_none_when_not_suppressed(manager):
    assert manager.reuse_timer_expiry("p", "d") is None


def test_second_suppression_after_reuse(engine, manager):
    charge_to_suppression(engine, manager)
    engine.run()
    assert not manager.is_suppressed("p", "d")
    # Charge hard again: the decayed remnant plus three fresh withdrawals
    # re-crosses the cutoff.
    charge_to_suppression(engine, manager)
    assert manager.is_suppressed("p", "d")
    assert len(manager.suppressions) == 2


def test_outcome_flags_on_plain_update(manager):
    outcome = manager.record_update("p", "d", UpdateKind.ATTRIBUTE_CHANGE)
    assert outcome.charged
    assert not outcome.suppressed
    assert not outcome.rescheduled_reuse

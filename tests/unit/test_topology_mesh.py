"""Unit tests for mesh and Internet-derived topologies."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.internet import internet_topology, pick_isp
from repro.topology.mesh import mesh_node_name, mesh_topology


class TestMesh:
    def test_paper_mesh_dimensions(self):
        """The paper's setup: 100 nodes, 200 links (torus degree 4)."""
        topology = mesh_topology(10, 10)
        assert topology.node_count == 100
        assert topology.edge_count == 200
        assert all(topology.degree(n) == 4 for n in topology.nodes)

    def test_all_nodes_topologically_equal(self):
        """Every node of a torus has the same eccentricity."""
        topology = mesh_topology(5, 5)
        eccentricities = {topology.eccentricity(n) for n in topology.nodes}
        assert len(eccentricities) == 1

    def test_wraparound_edges_exist(self):
        topology = mesh_topology(4, 4)
        assert topology.graph.has_edge(mesh_node_name(0, 0), mesh_node_name(3, 0))
        assert topology.graph.has_edge(mesh_node_name(0, 0), mesh_node_name(0, 3))

    def test_connected(self):
        topology = mesh_topology(3, 7)
        assert topology.node_count == 21

    def test_rectangular(self):
        topology = mesh_topology(2, 5)
        assert topology.node_count == 10
        # 2-row torus: vertical wraparound edge coincides with grid edge.
        assert all(topology.degree(n) in (3, 4) for n in topology.nodes)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            mesh_topology(1, 5)
        with pytest.raises(TopologyError):
            mesh_topology(5, 1)

    def test_hop_distance_torus(self):
        topology = mesh_topology(10, 10)
        # Wraparound: (0,0) to (0,9) is 1 hop, not 9.
        assert topology.hop_distance(mesh_node_name(0, 0), mesh_node_name(0, 9)) == 1
        assert topology.hop_distance(mesh_node_name(0, 0), mesh_node_name(0, 5)) == 5

    def test_nodes_at_distance(self):
        topology = mesh_topology(10, 10)
        at_one = topology.nodes_at_distance(mesh_node_name(0, 0), 1)
        assert len(at_one) == 4

    def test_metadata(self):
        topology = mesh_topology(4, 6)
        assert topology.metadata == {"rows": 4, "cols": 6}
        assert topology.name == "mesh-4x6"


class TestInternet:
    def test_size_and_connectivity(self):
        topology = internet_topology(100, seed=7)
        assert topology.node_count == 100
        assert topology.name == "internet-100"

    def test_long_tailed_degree_distribution(self):
        """Most nodes are low-degree stubs; a few hubs dominate."""
        topology = internet_topology(200, seed=7)
        histogram = topology.degree_histogram()
        stubs = sum(count for degree, count in histogram.items() if degree <= 3)
        assert stubs > topology.node_count / 2
        assert max(histogram) >= 4 * min(histogram)

    def test_deterministic_for_seed(self):
        a = internet_topology(50, seed=3)
        b = internet_topology(50, seed=3)
        assert a.edges == b.edges

    def test_different_seeds_differ(self):
        a = internet_topology(50, seed=3)
        b = internet_topology(50, seed=4)
        assert a.edges != b.edges

    def test_relationships_on_request(self):
        topology = internet_topology(50, seed=3, with_relationships=True)
        assert topology.relationships is not None
        # Every edge has a relationship.
        for u, v in topology.edges:
            assert topology.relationships.has_relationship(u, v)

    def test_no_relationships_by_default(self):
        assert internet_topology(50, seed=3).relationships is None

    def test_extra_peering_increases_edges(self):
        base = internet_topology(100, seed=7)
        enriched = internet_topology(100, seed=7, extra_peering_fraction=0.2)
        assert enriched.edge_count > base.edge_count

    def test_validation(self):
        with pytest.raises(TopologyError):
            internet_topology(2)
        with pytest.raises(TopologyError):
            internet_topology(10, attachment=0)
        with pytest.raises(TopologyError):
            internet_topology(10, attachment=10)
        with pytest.raises(TopologyError):
            internet_topology(10, extra_peering_fraction=-0.1)

    def test_pick_isp_in_topology(self):
        import random

        topology = internet_topology(50, seed=3)
        isp = pick_isp(topology, random.Random(1))
        assert isp in topology.nodes

"""Unit tests for the CI scale-smoke memory gate (benchmarks/compare_mem.py).

Like compare_perf.py, the script lives outside the package and is
loaded via an importlib spec from its file path. The seeded-regression
cases here are the gate's own regression test: the scale-smoke job is
only trustworthy if a deliberately inflated measurement fails it.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "compare_mem.py"
)


@pytest.fixture(scope="module")
def compare_mem():
    spec = importlib.util.spec_from_file_location("compare_mem", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _measurement(**overrides):
    doc = {
        "topology": "powerlaw-1000",
        "nodes": 1000,
        "seed": 0,
        "pulses": 2,
        "coalesce_delivery": True,
        "total_seconds": 3.0,
        "peak_rss_bytes": 100 * 1024**2,
        "digest": "a" * 64,
    }
    doc.update(overrides)
    return doc


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc), encoding="utf-8")
    return str(path)


@pytest.fixture()
def many_cpus(compare_mem, monkeypatch):
    """Pretend the host has enough CPUs for the wall-clock gate."""
    monkeypatch.setattr(compare_mem, "host_cpus", lambda: 4)


def test_identical_measurements_pass(compare_mem, tmp_path, many_cpus, capsys):
    baseline = _write(tmp_path, "base.json", _measurement())
    current = _write(tmp_path, "cur.json", _measurement())
    assert compare_mem.main(["--baseline", baseline, "--current", current]) == 0
    out = capsys.readouterr().out
    assert "within memory and wall-clock budgets" in out


def test_seeded_2x_rss_regression_fails(compare_mem, tmp_path, many_cpus, capsys):
    baseline = _write(tmp_path, "base.json", _measurement())
    current = _write(
        tmp_path, "cur.json", _measurement(peak_rss_bytes=200 * 1024**2)
    )
    assert compare_mem.main(["--baseline", baseline, "--current", current]) == 1
    assert "peak RSS regressed 2.00x" in capsys.readouterr().err


def test_rss_threshold_is_respected(compare_mem, tmp_path, many_cpus):
    baseline = _write(tmp_path, "base.json", _measurement())
    current = _write(
        tmp_path, "cur.json", _measurement(peak_rss_bytes=int(120 * 1024**2))
    )
    # 1.2x: inside the default 1.30x gate...
    assert compare_mem.main(["--baseline", baseline, "--current", current]) == 0
    # ...but outside a tightened one.
    assert (
        compare_mem.main(
            ["--baseline", baseline, "--current", current, "--rss-threshold", "1.1"]
        )
        == 1
    )


def test_wall_clock_regression_fails(compare_mem, tmp_path, many_cpus, capsys):
    baseline = _write(tmp_path, "base.json", _measurement())
    current = _write(tmp_path, "cur.json", _measurement(total_seconds=9.0))
    assert compare_mem.main(["--baseline", baseline, "--current", current]) == 1
    assert "wall clock regressed 3.00x" in capsys.readouterr().err


def test_wall_clock_gate_skips_on_single_cpu(
    compare_mem, tmp_path, monkeypatch, capsys
):
    monkeypatch.setattr(compare_mem, "host_cpus", lambda: 1)
    baseline = _write(tmp_path, "base.json", _measurement())
    current = _write(tmp_path, "cur.json", _measurement(total_seconds=9.0))
    # A 3x wall-clock blowup passes on a 1-CPU host (timing there is
    # contention noise), but the skip is announced...
    assert compare_mem.main(["--baseline", baseline, "--current", current]) == 0
    assert "wall-clock budget skipped" in capsys.readouterr().out
    # ...and the RSS gate still fires.
    regressed = _write(
        tmp_path, "rss.json",
        _measurement(total_seconds=9.0, peak_rss_bytes=300 * 1024**2),
    )
    assert compare_mem.main(["--baseline", baseline, "--current", regressed]) == 1


def test_absolute_ceilings(compare_mem, tmp_path, many_cpus, capsys):
    baseline = _write(tmp_path, "base.json", _measurement())
    current = _write(tmp_path, "cur.json", _measurement())
    assert (
        compare_mem.main(
            ["--baseline", baseline, "--current", current, "--max-rss-mb", "50"]
        )
        == 1
    )
    assert "ceiling" in capsys.readouterr().err
    assert (
        compare_mem.main(
            ["--baseline", baseline, "--current", current, "--max-seconds", "1.5"]
        )
        == 1
    )
    assert "budget" in capsys.readouterr().err


def test_workload_mismatch_fails(compare_mem, tmp_path, many_cpus, capsys):
    baseline = _write(tmp_path, "base.json", _measurement())
    current = _write(tmp_path, "cur.json", _measurement(nodes=5000))
    assert compare_mem.main(["--baseline", baseline, "--current", current]) == 1
    assert "workload mismatch" in capsys.readouterr().err


def test_digest_change_fails(compare_mem, tmp_path, many_cpus, capsys):
    baseline = _write(tmp_path, "base.json", _measurement())
    current = _write(tmp_path, "cur.json", _measurement(digest="b" * 64))
    assert compare_mem.main(["--baseline", baseline, "--current", current]) == 1
    assert "digest changed" in capsys.readouterr().err


def test_missing_file_is_usage_error(compare_mem, tmp_path):
    baseline = _write(tmp_path, "base.json", _measurement())
    assert (
        compare_mem.main(
            ["--baseline", baseline, "--current", str(tmp_path / "absent.json")]
        )
        == 2
    )


def test_malformed_measurement_is_usage_error(compare_mem, tmp_path):
    baseline = _write(tmp_path, "base.json", _measurement())
    bad = _write(tmp_path, "bad.json", {"total_seconds": 3.0})
    assert compare_mem.main(["--baseline", baseline, "--current", bad]) == 2

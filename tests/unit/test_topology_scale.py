"""Unit tests for the internet-scale topology pipeline
(repro.topology.scale): power-law synthesis, CAIDA-style ingest, and
stats."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology.scale import (
    estimate_powerlaw_exponent,
    ingest_as_relationships,
    powerlaw_topology,
    scale_node_name,
    topology_stats,
    write_as_relationships,
)


def test_scale_node_name_zero_pads_to_graph_width():
    assert scale_node_name(0, 1000) == "as000"
    assert scale_node_name(7, 10000) == "as0007"
    assert scale_node_name(9999, 10000) == "as9999"
    # Minimum width of 3 keeps tiny graphs aligned with the figures.
    assert scale_node_name(1, 5) == "as001"


def test_powerlaw_counts_and_connectivity():
    topology = powerlaw_topology(200, attachment=2, core=4, seed=1)
    assert topology.node_count == 200
    # clique core + attachment edges for every later node
    assert topology.edge_count == 6 + (200 - 4) * 2
    assert nx.is_connected(topology.graph)
    assert topology.name == "powerlaw-200"
    assert topology.metadata["generator"] == "powerlaw"


def test_powerlaw_is_deterministic_per_seed():
    first = powerlaw_topology(150, seed=5)
    second = powerlaw_topology(150, seed=5)
    assert sorted(first.edges) == sorted(second.edges)
    other = powerlaw_topology(150, seed=6)
    assert sorted(first.edges) != sorted(other.edges)


def test_powerlaw_exponent_shapes_the_tail():
    flat = powerlaw_topology(400, exponent=0.0, seed=2)
    sharp = powerlaw_topology(400, exponent=1.6, seed=2)
    flat_max = max(d for _, d in flat.graph.degree)
    sharp_max = max(d for _, d in sharp.graph.degree)
    assert sharp_max > flat_max


def test_powerlaw_with_relationships_is_valley_free_ready():
    topology = powerlaw_topology(120, seed=3, with_relationships=True)
    assert topology.relationships is not None
    topology.relationships.validate_acyclic(topology.nodes)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"nodes": 2},
        {"nodes": 50, "attachment": 0},
        {"nodes": 50, "core": 1},
        {"nodes": 50, "core": 51},
        {"nodes": 50, "exponent": -0.5},
    ],
)
def test_powerlaw_rejects_bad_parameters(kwargs):
    with pytest.raises(TopologyError):
        powerlaw_topology(**kwargs)


def test_caida_round_trip(tmp_path):
    original = powerlaw_topology(80, seed=4, with_relationships=True)
    path = tmp_path / "as-rel.txt"
    write_as_relationships(original, path)
    restored = ingest_as_relationships(path, name=original.name)
    assert restored.node_count == original.node_count
    assert restored.edge_count == original.edge_count
    assert restored.relationships is not None
    assert (
        restored.relationships.provider_edge_count
        == original.relationships.provider_edge_count
    )
    assert (
        restored.relationships.peer_edge_count
        == original.relationships.peer_edge_count
    )


def test_ingest_skips_comments_and_blank_lines(tmp_path):
    path = tmp_path / "rel.txt"
    path.write_text("# header\n\n1|2|-1\n1|3|-1\n2|3|0\n", encoding="utf-8")
    topology = ingest_as_relationships(path)
    assert sorted(topology.nodes) == ["as1", "as2", "as3"]
    assert topology.edge_count == 3
    assert topology.relationships.provider_edge_count == 2
    assert topology.relationships.peer_edge_count == 1


@pytest.mark.parametrize(
    "line",
    ["1|2", "one|2|-1", "1|2|7", "5|5|0"],
)
def test_ingest_rejects_malformed_lines_with_line_numbers(tmp_path, line):
    path = tmp_path / "bad.txt"
    path.write_text(f"1|2|-1\n{line}\n", encoding="utf-8")
    with pytest.raises(TopologyError, match=":2:"):
        ingest_as_relationships(path)


def test_ingest_empty_file_fails(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("# nothing here\n", encoding="utf-8")
    with pytest.raises(TopologyError, match="no relationships"):
        ingest_as_relationships(path)


def test_ingest_keeps_largest_component_by_default(tmp_path):
    path = tmp_path / "split.txt"
    # A 3-node component and a separate 2-node one.
    path.write_text("1|2|-1\n1|3|-1\n8|9|0\n", encoding="utf-8")
    topology = ingest_as_relationships(path)
    assert sorted(topology.nodes) == ["as1", "as2", "as3"]
    with pytest.raises(TopologyError):
        ingest_as_relationships(path, largest_component=False)


def test_write_requires_relationships(tmp_path):
    topology = powerlaw_topology(20, seed=0)
    with pytest.raises(TopologyError, match="no relationships"):
        write_as_relationships(topology, tmp_path / "out.txt")


def test_estimate_powerlaw_exponent():
    assert estimate_powerlaw_exponent([1, 1, 1]) is None
    # A genuinely heavy-tailed sample estimates a finite alpha > 1.
    degrees = [2] * 50 + [4] * 20 + [8] * 8 + [16] * 3 + [64]
    alpha = estimate_powerlaw_exponent(degrees)
    assert alpha is not None and 1.0 < alpha < 5.0


def test_topology_stats_fields():
    topology = powerlaw_topology(100, seed=7, with_relationships=True)
    stats = topology_stats(topology)
    assert stats["nodes"] == 100
    assert stats["edges"] == topology.edge_count
    assert stats["max_degree"] == stats["top5_degrees"][0]
    assert stats["provider_edges"] + stats["peer_edges"] == topology.edge_count
    assert stats["powerlaw_exponent_mle"] > 1.0

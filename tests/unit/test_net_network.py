"""Unit tests for the Network registry and hooks."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.link import LinkConfig
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class Sink(Node):
    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.received = []
        self.started = 0

    def handle_message(self, message: Message) -> None:
        self.received.append(message)

    def start(self) -> None:
        self.started += 1


@pytest.fixture
def network():
    return Network(Engine(), RngRegistry(1))


def test_duplicate_node_name_rejected(network):
    network.add_node(Sink("a"))
    with pytest.raises(ConfigurationError):
        network.add_node(Sink("a"))


def test_link_requires_existing_nodes(network):
    network.add_node(Sink("a"))
    with pytest.raises(ConfigurationError):
        network.add_link("a", "ghost")
    with pytest.raises(ConfigurationError):
        network.add_link("ghost", "a")


def test_duplicate_link_rejected(network):
    network.add_node(Sink("a"))
    network.add_node(Sink("b"))
    network.add_link("a", "b")
    with pytest.raises(ConfigurationError):
        network.add_link("b", "a")


def test_link_lookup_is_order_insensitive(network):
    network.add_node(Sink("a"))
    network.add_node(Sink("b"))
    link = network.add_link("a", "b")
    assert network.link("b", "a") is link
    assert network.has_link("b", "a")


def test_unknown_node_lookup_raises(network):
    with pytest.raises(SimulationError):
        network.node("missing")


def test_neighbors_recorded_on_link_add(network):
    a = network.add_node(Sink("a"))
    b = network.add_node(Sink("b"))
    network.add_node(Sink("c"))
    network.add_link("a", "b")
    network.add_link("a", "c")
    assert a.neighbors == ["b", "c"]
    assert b.neighbors == ["a"]


def test_degree(network):
    network.add_node(Sink("a"))
    network.add_node(Sink("b"))
    network.add_node(Sink("c"))
    network.add_link("a", "b")
    network.add_link("a", "c")
    assert network.degree("a") == 2
    assert network.degree("b") == 1


def test_counts(network):
    network.add_node(Sink("a"))
    network.add_node(Sink("b"))
    network.add_link("a", "b")
    assert network.node_count == 2
    assert network.link_count == 1


def test_delivery_hook_sees_messages(network):
    a = network.add_node(Sink("a"))
    network.add_node(Sink("b"))
    network.add_link("a", "b", LinkConfig(base_delay=0.01, jitter=0.0))
    seen = []
    network.add_delivery_hook(lambda m: seen.append(m.payload))
    a.send("b", "payload")
    network.engine.run()
    assert seen == ["payload"]
    assert network.messages_delivered == 1


def test_send_hook_sees_dropped_messages(network):
    a = network.add_node(Sink("a"))
    network.add_node(Sink("b"))
    network.add_link("a", "b")
    network.link("a", "b").set_up(False)
    sent = []
    network.add_send_hook(lambda m: sent.append(m.payload))
    a.send("b", "dropped")
    network.engine.run()
    assert sent == ["dropped"]
    assert network.messages_delivered == 0


def test_start_invokes_every_node(network):
    a = network.add_node(Sink("a"))
    b = network.add_node(Sink("b"))
    network.start()
    assert a.started == 1
    assert b.started == 1


def test_unattached_node_raises():
    node = Sink("lonely")
    with pytest.raises(RuntimeError):
        _ = node.network

"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, call_soon, format_time


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_clock_custom_start():
    assert Engine(start_time=10.0).now == 10.0


def test_schedule_and_run_single_event():
    engine = Engine()
    fired = []
    engine.schedule(5.0, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [5.0]
    assert engine.now == 5.0


def test_events_fire_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(3.0, lambda: order.append("c"))
    engine.schedule(1.0, lambda: order.append("a"))
    engine.schedule(2.0, lambda: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    engine = Engine()
    order = []
    for label in ("first", "second", "third"):
        engine.schedule(1.0, lambda lab=label: order.append(lab))
    engine.run()
    assert order == ["first", "second", "third"]


def test_schedule_at_absolute_time():
    engine = Engine()
    fired = []
    engine.schedule_at(7.5, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [7.5]


def test_schedule_in_past_raises():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(0.5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        Engine().schedule(-1.0, lambda: None)


def test_non_finite_time_raises():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule_at(float("inf"), lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule_at(float("nan"), lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(1.0, lambda: fired.append("cancelled"))
    engine.schedule(2.0, lambda: fired.append("kept"))
    event.cancel()
    engine.run()
    assert fired == ["kept"]


def test_events_scheduled_during_run_are_executed():
    engine = Engine()
    fired = []

    def chain():
        fired.append(engine.now)
        if engine.now < 3.0:
            engine.schedule(1.0, chain)

    engine.schedule(1.0, chain)
    engine.run()
    assert fired == [1.0, 2.0, 3.0]


def test_run_until_stops_before_later_events():
    engine = Engine()
    fired = []
    engine.schedule(1.0, lambda: fired.append(1))
    engine.schedule(10.0, lambda: fired.append(10))
    executed = engine.run(until=5.0)
    assert executed == 1
    assert fired == [1]
    assert engine.now == 5.0  # run() advances to the horizon
    engine.run()
    assert fired == [1, 10]


def test_run_until_idle_does_not_advance_clock_past_last_event():
    engine = Engine()
    engine.schedule(2.0, lambda: None)
    engine.run_until_idle(max_time=100.0)
    assert engine.now == 2.0


def test_run_until_idle_respects_max_time():
    engine = Engine()
    fired = []
    engine.schedule(1.0, lambda: fired.append(1))
    engine.schedule(50.0, lambda: fired.append(50))
    engine.run_until_idle(max_time=10.0)
    assert fired == [1]
    assert engine.pending_count == 1


def test_run_until_idle_event_budget_exceeded_raises():
    engine = Engine()

    def forever():
        engine.schedule(0.1, forever)

    engine.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        engine.run_until_idle(max_time=1e9, max_events=100)


def test_max_events_limits_run():
    engine = Engine()
    for i in range(10):
        engine.schedule(float(i + 1), lambda: None)
    executed = engine.run(max_events=4)
    assert executed == 4
    assert engine.pending_count == 6


def test_step_returns_false_on_empty_queue():
    assert Engine().step() is False


def test_step_executes_one_event():
    engine = Engine()
    fired = []
    engine.schedule(1.0, lambda: fired.append(1))
    engine.schedule(2.0, lambda: fired.append(2))
    assert engine.step() is True
    assert fired == [1]


def test_pending_count_excludes_cancelled():
    engine = Engine()
    keep = engine.schedule(1.0, lambda: None)
    drop = engine.schedule(2.0, lambda: None)
    drop.cancel()
    del keep
    assert engine.pending_count == 1


def test_peek_next_time_skips_cancelled():
    engine = Engine()
    first = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    first.cancel()
    assert engine.peek_next_time() == 2.0


def test_peek_next_time_empty_queue():
    assert Engine().peek_next_time() is None


def test_run_is_not_reentrant():
    engine = Engine()
    errors = []

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            errors.append(exc)

    engine.schedule(1.0, reenter)
    engine.run()
    assert len(errors) == 1


def test_events_executed_counter():
    engine = Engine()
    for i in range(5):
        engine.schedule(float(i), lambda: None)
    engine.run()
    assert engine.events_executed == 5


def test_clear_drops_pending_events():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.clear()
    assert engine.pending_count == 0


def test_call_soon_runs_at_current_time():
    engine = Engine()
    engine.schedule(5.0, lambda: None)
    engine.run()
    fired = []
    call_soon(engine, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [5.0]


def test_format_time():
    assert format_time(0.0) == "0:00:00.000"
    assert format_time(3723.5) == "1:02:03.500"
    assert format_time(59.999) == "0:00:59.999"


# ----------------------------------------------------------------------
# schedule-race (tie) detection
# ----------------------------------------------------------------------


def test_tie_detection_off_by_default():
    engine = Engine()
    assert not engine.tie_detection_enabled
    engine.schedule_at(1.0, lambda: None, actor="r1", tag="deliver")
    engine.schedule_at(1.0, lambda: None, actor="r1", tag="deliver")
    engine.run()
    assert engine.ties == []


def test_same_instant_same_actor_records_tie():
    engine = Engine(detect_ties=True)
    engine.schedule_at(5.0, lambda: None, actor="r1", tag="deliver")
    engine.schedule_at(5.0, lambda: None, actor="r1", tag="mrai")
    engine.run()
    assert len(engine.ties) == 1
    tie = engine.ties[0]
    assert tie.time == 5.0
    assert tie.actor == "r1"
    assert tie.first_seq < tie.second_seq
    assert tie.tags == ("deliver", "mrai")


def test_same_instant_different_actors_is_not_a_tie():
    engine = Engine(detect_ties=True)
    engine.schedule_at(5.0, lambda: None, actor="r1")
    engine.schedule_at(5.0, lambda: None, actor="r2")
    engine.run()
    assert engine.ties == []


def test_same_actor_different_instants_is_not_a_tie():
    engine = Engine(detect_ties=True)
    engine.schedule_at(1.0, lambda: None, actor="r1")
    engine.schedule_at(2.0, lambda: None, actor="r1")
    engine.run()
    assert engine.ties == []


def test_unlabelled_events_never_tie():
    engine = Engine(detect_ties=True)
    engine.schedule_at(1.0, lambda: None)
    engine.schedule_at(1.0, lambda: None)
    engine.run()
    assert engine.ties == []


def test_three_way_tie_records_one_tie_per_follower():
    engine = Engine(detect_ties=True)
    for tag in ("a", "b", "c"):
        engine.schedule_at(1.0, lambda: None, actor="r1", tag=tag)
    engine.run()
    assert len(engine.ties) == 2
    assert [t.tags for t in engine.ties] == [("a", "b"), ("a", "c")]


def test_tie_observer_and_clear():
    engine = Engine(detect_ties=True)
    seen = []
    engine.add_tie_observer(seen.append)
    engine.schedule_at(1.0, lambda: None, actor="r1")
    engine.schedule_at(1.0, lambda: None, actor="r1")
    engine.run()
    assert len(seen) == 1 and seen == engine.ties
    engine.clear_ties()
    assert engine.ties == []


def test_enable_tie_detection_mid_run():
    engine = Engine()
    engine.schedule_at(1.0, lambda: None, actor="r1")
    engine.schedule_at(1.0, lambda: None, actor="r1")
    engine.run()
    assert engine.ties == []
    engine.enable_tie_detection()
    engine.schedule_at(engine.now + 1.0, lambda: None, actor="r1")
    engine.schedule_at(engine.now + 1.0, lambda: None, actor="r1")
    engine.run()
    assert len(engine.ties) == 1


def test_detection_is_passive_identical_execution_order():
    def trace_run(detect: bool):
        order = []
        engine = Engine(detect_ties=detect)
        for i in range(5):
            engine.schedule_at(1.0, lambda i=i: order.append(i), actor="r1")
        engine.run()
        return order

    assert trace_run(False) == trace_run(True) == [0, 1, 2, 3, 4]


def test_timer_forwards_actor_and_tag():
    from repro.sim.timers import Timer

    engine = Engine(detect_ties=True)
    t1 = Timer(engine, lambda: None, name="a", actor="r1", tag="mrai")
    t2 = Timer(engine, lambda: None, name="b", actor="r1", tag="reuse")
    t1.start(3.0)
    t2.start(3.0)
    engine.run()
    assert len(engine.ties) == 1
    assert engine.ties[0].tags == ("mrai", "reuse")


# ----------------------------------------------------------------------
# lazy-cancellation heap compaction
# ----------------------------------------------------------------------


def test_cancelling_10k_mrai_style_timers_keeps_heap_bounded():
    """Regression: cancelled entries used to stay in the heap forever, so
    timer churn (an MRAI re-arm cancels the previous event every time)
    grew the queue without bound. Compaction must keep the heap
    proportional to the live event count."""
    engine = Engine()
    live = [engine.schedule(1_000.0, lambda: None) for _ in range(100)]
    for i in range(10_000):
        event = engine.schedule(30.0 + (i % 7), lambda: None, tag="mrai")
        event.cancel()
    assert engine.pending_count == 100
    # Cancelled entries may linger only below the compaction threshold:
    # at most half the queue plus the small-queue floor.
    assert engine.queue_size <= 2 * 100 + 64
    assert engine.run() == 100
    assert engine.queue_size == 0
    assert all(not e.cancelled for e in live)


def test_pending_count_is_consistent_through_cancel_and_purge():
    engine = Engine()
    events = [engine.schedule(float(i + 1), lambda: None) for i in range(10)]
    events[3].cancel()
    events[7].cancel()
    events[7].cancel()  # double-cancel must not double-count
    assert engine.pending_count == 8
    removed = engine.purge_cancelled()
    assert removed == 2
    assert engine.pending_count == 8
    assert engine.queue_size == 8
    assert engine.purge_cancelled() == 0


def test_cancel_after_firing_does_not_corrupt_bookkeeping():
    engine = Engine()
    fired = engine.schedule(1.0, lambda: None)
    pending = engine.schedule(2.0, lambda: None)
    engine.run(until=1.5)
    fired.cancel()  # already executed; must not affect the queue count
    assert engine.pending_count == 1
    engine.run()
    assert engine.events_executed == 2
    del pending


def test_cancel_inside_running_callback_compacts_safely():
    """Compaction rebuilds the queue list in place, so a cancellation
    storm triggered from inside a callback must not confuse the run loop
    holding a reference to the queue."""
    engine = Engine()
    doomed = [engine.schedule(50.0, lambda: None) for _ in range(200)]
    survivor_fired = []

    def cancel_everything() -> None:
        for event in doomed:
            event.cancel()

    engine.schedule(1.0, cancel_everything)
    engine.schedule(60.0, lambda: survivor_fired.append(engine.now))
    engine.run()
    assert survivor_fired == [60.0]
    assert engine.pending_count == 0
    assert engine.queue_size == 0


def test_clear_resets_cancellation_bookkeeping():
    engine = Engine()
    events = [engine.schedule(float(i + 1), lambda: None) for i in range(5)]
    events[0].cancel()
    engine.clear()
    assert engine.pending_count == 0
    assert engine.queue_size == 0
    # Cancelling a cleared event is a no-op, not a counter underflow.
    events[1].cancel()
    assert engine.pending_count == 0

"""Unit tests for experiment machinery: configs, sweeps, result rendering."""

from __future__ import annotations

import pytest

from repro.core.params import CISCO_DEFAULTS, JUNIPER_DEFAULTS
from repro.experiments.base import (
    DEFAULT_PULSE_COUNTS,
    ExperimentResult,
    default_pulse_counts,
    internet100_config,
    internet208_config,
    mesh100_config,
    run_point,
    run_sweep,
    small_mesh_config,
)


class TestStandardConfigs:
    def test_mesh100_is_paper_setup(self):
        config = mesh100_config()
        assert config.topology.node_count == 100
        assert config.topology.edge_count == 200
        assert config.damping is CISCO_DEFAULTS
        assert not config.rcn

    def test_topologies_are_cached(self):
        assert mesh100_config().topology is mesh100_config().topology
        assert internet100_config().topology is internet100_config().topology

    def test_internet208_has_relationships(self):
        config = internet208_config()
        assert config.topology.node_count == 208
        assert config.topology.relationships is not None

    def test_mesh100_variants(self):
        rcn = mesh100_config(rcn=True)
        assert rcn.rcn
        juniper = mesh100_config(damping=JUNIPER_DEFAULTS)
        assert juniper.damping is JUNIPER_DEFAULTS
        partial = mesh100_config(damping_fraction=0.5)
        assert partial.damping_fraction == 0.5

    def test_small_mesh_config(self):
        config = small_mesh_config()
        assert config.topology.node_count == 25

    def test_default_pulse_counts(self):
        counts = default_pulse_counts()
        assert counts == list(range(0, 11))
        assert tuple(counts) == DEFAULT_PULSE_COUNTS
        # Returns a fresh list each time (callers may mutate).
        assert default_pulse_counts() is not counts


class TestSweeps:
    def test_run_point_deterministic(self):
        a = run_point(small_mesh_config(seed=2), pulses=1)
        b = run_point(small_mesh_config(seed=2), pulses=1)
        assert a.convergence_time == b.convergence_time
        assert a.message_count == b.message_count

    def test_run_sweep_points_in_order(self):
        series = run_sweep("s", small_mesh_config(damping=None, seed=2), [0, 1, 2])
        assert [p.pulses for p in series.points] == [0, 1, 2]
        assert series.label == "s"

    def test_sweep_accessors(self):
        series = run_sweep("s", small_mesh_config(damping=None, seed=2), [1])
        point = series.point(1)
        assert point.message_count == series.messages()[0][1]
        assert point.convergence_time == series.convergence()[0][1]
        assert series.mean_warmup > 0

    def test_empty_series_mean_warmup(self):
        from repro.experiments.base import SweepSeries

        assert SweepSeries("empty").mean_warmup == 0.0

    def test_flap_interval_respected(self):
        fast = run_point(small_mesh_config(seed=2), pulses=2, flap_interval=10.0)
        slow = run_point(small_mesh_config(seed=2), pulses=2, flap_interval=120.0)
        assert (
            slow.flap_times[-1] - slow.flap_times[0]
            > fast.flap_times[-1] - fast.flap_times[0]
        )


class TestExperimentResult:
    def make_result(self, **kwargs) -> ExperimentResult:
        defaults = dict(
            experiment_id="T0",
            title="Test",
            headers=["a", "b"],
            rows=[[1, 2]],
        )
        defaults.update(kwargs)
        return ExperimentResult(**defaults)

    def test_render_includes_id_and_title(self):
        text = self.make_result().render()
        assert "T0: Test" in text
        assert "a" in text and "b" in text

    def test_render_includes_notes(self):
        text = self.make_result(notes=["first note", "second note"]).render()
        assert "note: first note" in text
        assert "note: second note" in text

    def test_render_includes_extra_sections(self):
        text = self.make_result(extra_sections=["SECTION BODY"]).render()
        assert "SECTION BODY" in text

    def test_data_defaults_empty(self):
        assert self.make_result().data == {}

"""Unit tests for the detlint rule catalogue.

Every rule gets the same three-way treatment: a small synthetic fixture
that must fire, the same fixture with a ``# detlint: disable=...``
comment that must stay silent, and compliant code the rule must not
flag. Framework behaviour (suppressions, select/ignore, reporters,
module scoping) is covered at the end.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    LintConfig,
    RULE_IDS,
    all_rule_ids,
    iter_rules,
    lint_paths,
    lint_source,
    make_config,
    parse_suppressions,
    render_json,
    render_rule_list,
    render_text,
)


def findings_for(source: str, module: str = "repro.sim.fixture") -> list:
    report = lint_source(textwrap.dedent(source), path="fixture.py", module=module)
    assert not report.parse_errors
    return report.findings


def rule_ids_of(source: str, module: str = "repro.sim.fixture") -> set:
    return {f.rule_id for f in findings_for(source, module=module)}


# ----------------------------------------------------------------------
# DET001 — wall-clock
# ----------------------------------------------------------------------


class TestDET001:
    def test_fires_on_time_time(self):
        ids = rule_ids_of(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert "DET001" in ids

    def test_fires_on_datetime_now_and_aliased_import(self):
        ids = rule_ids_of(
            """
            from datetime import datetime
            import time as clock

            def stamps():
                return datetime.now(), clock.monotonic()
            """
        )
        assert ids == {"DET001"}
        assert len(findings_for(
            """
            from datetime import datetime
            import time as clock

            def stamps():
                return datetime.now(), clock.monotonic()
            """
        )) == 2

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            import time

            def stamp():
                return time.time()  # detlint: disable=DET001
            """
        )

    def test_quiet_on_engine_clock(self):
        assert not findings_for(
            """
            def stamp(engine):
                return engine.now
            """
        )

    def test_quiet_on_unrelated_time_attribute(self):
        # record.time is simulated time, not the time module
        assert not findings_for(
            """
            def first(records):
                return [r.time for r in records]
            """
        )


# ----------------------------------------------------------------------
# DET002 — global random state
# ----------------------------------------------------------------------


class TestDET002:
    def test_fires_on_module_level_random(self):
        ids = rule_ids_of(
            """
            import random

            def jitter():
                return random.uniform(0.0, 1.0)
            """
        )
        assert "DET002" in ids

    def test_fires_on_literal_seeded_random(self):
        ids = rule_ids_of(
            """
            import random

            def chooser():
                return random.Random(0)
            """
        )
        assert "DET002" in ids

    def test_fires_on_unseeded_random_constructor(self):
        ids = rule_ids_of(
            """
            import random

            def chooser():
                return random.Random()
            """
        )
        assert "DET002" in ids

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            import random

            def jitter():
                return random.random()  # detlint: disable=DET002
            """
        )

    def test_quiet_on_injected_generator_and_derived_seed(self):
        assert not findings_for(
            """
            import random

            def jitter(rng):
                return rng.uniform(0.0, 1.0)

            def derived(seed):
                return random.Random(seed + 1)
            """
        )


# ----------------------------------------------------------------------
# DET003 — set iteration
# ----------------------------------------------------------------------


class TestDET003:
    def test_fires_on_set_literal_loop(self):
        ids = rule_ids_of(
            """
            def drain(a, b):
                for router in {a, b}:
                    router.flush()
            """
        )
        assert "DET003" in ids

    def test_fires_on_set_call_and_comprehension(self):
        source = """
            def emit(names):
                for name in set(names):
                    print(name)
                return [n for n in {x.strip() for x in names}]
            """
        assert "DET003" in rule_ids_of(source)
        assert len([f for f in findings_for(source) if f.rule_id == "DET003"]) >= 2

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def drain(a, b):
                for router in {a, b}:  # detlint: disable=DET003
                    router.flush()
            """
        )

    def test_quiet_on_sorted_set(self):
        assert not findings_for(
            """
            def drain(names):
                for name in sorted(set(names)):
                    print(name)
            """
        )


# ----------------------------------------------------------------------
# DET004 — hash()/id() ordering
# ----------------------------------------------------------------------


class TestDET004:
    def test_fires_on_hash_sort_key(self):
        ids = rule_ids_of(
            """
            def order(routers):
                return sorted(routers, key=hash)
            """
        )
        assert "DET004" in ids

    def test_fires_on_id_in_lambda_key_and_dict_key(self):
        findings = [
            f
            for f in findings_for(
                """
                def order(routers, a, b):
                    routers.sort(key=lambda r: id(r))
                    table = {hash(a): a}
                    table[id(b)] = b
                    return table
                """
            )
            if f.rule_id == "DET004"
        ]
        assert len(findings) == 3

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def order(routers):
                return sorted(routers, key=hash)  # detlint: disable=DET004
            """
        )

    def test_quiet_on_name_keys(self):
        # (PERF001 may flag the lambda itself; DET004 must stay quiet.)
        assert "DET004" not in rule_ids_of(
            """
            def order(routers):
                return sorted(routers, key=lambda r: r.name)
            """
        )


# ----------------------------------------------------------------------
# DET005 — float time equality
# ----------------------------------------------------------------------


class TestDET005:
    def test_fires_on_time_equality(self):
        ids = rule_ids_of(
            """
            def same_instant(event, engine):
                return event.time == engine.now
            """
        )
        assert "DET005" in ids

    def test_fires_on_inequality(self):
        ids = rule_ids_of(
            """
            def moved(expiry, deadline):
                return expiry != deadline
            """
        )
        assert "DET005" in ids

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def same_instant(event, engine):
                return event.time == engine.now  # detlint: disable=DET005
            """
        )

    def test_quiet_on_tolerance_nan_check_and_tags(self):
        assert not findings_for(
            """
            def ok(event, engine, record):
                close = abs(event.time - engine.now) <= 1e-9
                nan = event.time != event.time
                tag = record.kind == "reuse"
                return close or nan or tag
            """
        )


# ----------------------------------------------------------------------
# DET006 — re-entrant engine runs
# ----------------------------------------------------------------------


class TestDET006:
    def test_fires_on_closure_calling_run(self):
        ids = rule_ids_of(
            """
            def schedule_probe(engine):
                def probe():
                    engine.run(until=engine.now + 1.0)
                engine.schedule(0.0, probe)
            """
        )
        assert "DET006" in ids

    def test_fires_on_lambda_and_self_engine(self):
        ids = rule_ids_of(
            """
            class Driver:
                def arm(self):
                    self._engine.schedule(0.0, lambda: self._engine.step())
            """
        )
        assert "DET006" in ids

    def test_respects_disable_comment(self):
        # (PERF001 may flag the nested def; DET006 must stay silent.)
        assert "DET006" not in rule_ids_of(
            """
            def schedule_probe(engine):
                def probe():
                    engine.run()  # detlint: disable=DET006
                engine.schedule(0.0, probe)
            """
        )

    def test_quiet_on_top_level_run_and_other_receivers(self):
        assert not findings_for(
            """
            def drive(engine, scenario):
                engine.run_until_idle(max_time=100.0)
                return scenario.run(None)

            class Scenario:
                def run(self, schedule):
                    self.engine.run_until_idle(max_time=10.0)
            """
        )


# ----------------------------------------------------------------------
# DET007 — ambient environment access
# ----------------------------------------------------------------------


class TestDET007:
    def test_fires_inside_protected_package(self):
        ids = rule_ids_of(
            """
            import os

            def load():
                flag = os.environ["REPRO_DEBUG"]
                with open("params.txt") as handle:
                    return flag, handle.read()
            """,
            module="repro.core.fixture",
        )
        assert "DET007" in ids

    def test_fires_on_getenv_and_path_reads(self):
        findings = [
            f
            for f in findings_for(
                """
                import os
                import pathlib

                def load(path):
                    a = os.getenv("SEED")
                    b = pathlib.Path(path).read_text()
                    return a, b
                """,
                module="repro.bgp.fixture",
            )
            if f.rule_id == "DET007"
        ]
        assert len(findings) == 2

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            import os

            def load():
                return os.getenv("SEED")  # detlint: disable=DET007
            """,
            module="repro.sim.fixture",
        )

    def test_quiet_outside_protected_packages(self):
        assert not findings_for(
            """
            import os

            def load():
                return os.getenv("SEED")
            """,
            module="repro.experiments.fixture",
        )


# ----------------------------------------------------------------------
# DET008 — mutable defaults
# ----------------------------------------------------------------------


class TestDET008:
    def test_fires_on_public_list_default(self):
        ids = rule_ids_of(
            """
            def run_episode(pulses, hooks=[]):
                return pulses, hooks
            """
        )
        assert "DET008" in ids

    def test_fires_on_dict_set_and_constructor_defaults(self):
        findings = [
            f
            for f in findings_for(
                """
                def configure(overrides={}, tags=set(), *, extra=list()):
                    return overrides, tags, extra
                """
            )
            if f.rule_id == "DET008"
        ]
        assert len(findings) == 3

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def run_episode(pulses, hooks=[]):  # detlint: disable=DET008
                return pulses, hooks
            """
        )

    def test_quiet_on_none_default_and_private_helpers(self):
        assert not findings_for(
            """
            def run_episode(pulses, hooks=None):
                return pulses, hooks or []

            def _internal(cache=[]):
                return cache
            """
        )


# ----------------------------------------------------------------------
# DET009 — unsorted filesystem iteration
# ----------------------------------------------------------------------


class TestDET009:
    def test_fires_on_listdir_loop(self):
        ids = rule_ids_of(
            """
            import os

            def load(directory):
                for name in os.listdir(directory):
                    print(name)
            """,
            module="repro.experiments.fixture",
        )
        assert "DET009" in ids

    def test_fires_on_glob_scandir_and_path_methods(self):
        findings = [
            f
            for f in findings_for(
                """
                import glob
                import os
                import pathlib

                def discover(root):
                    a = glob.glob("*.csv")
                    b = list(os.scandir(root))
                    c = [p for p in pathlib.Path(root).iterdir()]
                    d = list(pathlib.Path(root).rglob("*.json"))
                    return a, b, c, d
                """,
                module="repro.experiments.fixture",
            )
            if f.rule_id == "DET009"
        ]
        assert len(findings) == 4

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            import os

            def load(directory):
                return os.listdir(directory)  # detlint: disable=DET009
            """,
            module="repro.experiments.fixture",
        )

    def test_quiet_when_wrapped_in_sorted(self):
        assert not findings_for(
            """
            import glob
            import os
            import pathlib

            def discover(root):
                for name in sorted(os.listdir(root)):
                    print(name)
                a = sorted(glob.glob("*.csv"))
                b = sorted(p.name for p in pathlib.Path(root).iterdir())
                return a, b
            """,
            module="repro.experiments.fixture",
        )

    def test_fires_on_from_import_alias_and_not_on_local_name(self):
        # `from glob import glob` resolves through the alias map and
        # fires; a local helper that happens to be called glob does not.
        assert "DET009" in rule_ids_of(
            """
            from glob import glob

            def discover():
                return glob("*.csv")
            """,
            module="repro.experiments.fixture",
        )
        assert not findings_for(
            """
            def glob(pattern, candidates):
                return [c for c in candidates if pattern in c]

            def discover(candidates):
                return glob("p0", candidates)
            """,
            module="repro.experiments.fixture",
        )


# ----------------------------------------------------------------------
# DET010 — process fan-out outside the sweep executor
# ----------------------------------------------------------------------


class TestDET010:
    def test_fires_on_multiprocessing_import(self):
        ids = rule_ids_of(
            """
            import multiprocessing

            def fan_out(items):
                with multiprocessing.Pool() as pool:
                    return pool.map(str, items)
            """,
            module="repro.experiments.fixture",
        )
        assert "DET010" in ids

    def test_fires_on_concurrent_futures_from_import(self):
        ids = rule_ids_of(
            """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(str, items))
            """,
            module="repro.experiments.fixture",
        )
        assert "DET010" in ids

    def test_fires_on_os_fork(self):
        ids = rule_ids_of(
            """
            import os

            def split():
                return os.fork()
            """,
            module="repro.experiments.fixture",
        )
        assert "DET010" in ids

    def test_silent_in_executor_module(self):
        assert "DET010" not in rule_ids_of(
            """
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            """,
            module="repro.experiments.parallel",
        )

    def test_suppression_comment_works(self):
        assert "DET010" not in rule_ids_of(
            """
            import multiprocessing  # detlint: disable=DET010
            """,
            module="repro.experiments.fixture",
        )

    def test_silent_on_unrelated_imports_and_os_use(self):
        assert "DET010" not in rule_ids_of(
            """
            import os
            from concurrentutils import helpers

            def cpu_count():
                return os.cpu_count()
            """,
            module="repro.experiments.fixture",
        )


# ----------------------------------------------------------------------
# framework behaviour
# ----------------------------------------------------------------------


class TestFramework:
    def test_catalogue_is_complete(self):
        expected = (
            {f"DET00{i}" for i in range(1, 10)}
            | {"DET010"}
            | {f"SEM00{i}" for i in range(1, 8)}
            | {f"TIM00{i}" for i in range(1, 10)}
            | {"TIM010"}
            | {f"PERF00{i}" for i in range(1, 10)}
            | {"PERF010"}
        )
        assert set(RULE_IDS) == expected
        assert all_rule_ids() == frozenset(expected)

    def test_every_rule_has_title_and_rationale(self):
        for rule in iter_rules():
            assert rule.id and rule.title and rule.rationale

    def test_disable_all_token(self):
        assert not findings_for(
            """
            import time

            def stamp():
                return time.time()  # detlint: disable=all
            """
        )

    def test_suppressed_findings_are_still_recorded(self):
        report = lint_source(
            "import time\nt = time.time()  # detlint: disable=DET001\n",
            path="fixture.py",
        )
        assert not report.findings
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppressed

    def test_parse_suppressions_ignores_strings(self):
        mapping = parse_suppressions(
            's = "# detlint: disable=DET001"\nt = 1  # detlint: disable=DET002,DET003\n'
        )
        assert mapping == {2: {"DET002", "DET003"}}

    def test_select_and_ignore(self):
        source = "import time, random\na = time.time()\nb = random.random()\n"
        only_001 = lint_source(
            source, config=make_config(select=("DET001",))
        ).findings
        assert {f.rule_id for f in only_001} == {"DET001"}
        without_001 = lint_source(
            source, config=make_config(ignore=("DET001",))
        ).findings
        assert {f.rule_id for f in without_001} == {"DET002"}

    def test_unknown_rule_id_rejected(self):
        config = make_config(select=("DET999",))
        with pytest.raises(ConfigurationError):
            config.validate(all_rule_ids())

    def test_lint_paths_on_fixture_dir(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        (tmp_path / "good.py").write_text("x = 1\n", encoding="utf-8")
        report = lint_paths([str(tmp_path)])
        assert report.files_checked == 2
        assert [f.rule_id for f in report.findings] == ["DET001"]
        assert report.findings[0].path.endswith("bad.py")
        assert not report.ok

    def test_parse_error_is_reported_not_raised(self):
        report = lint_source("def broken(:\n", path="broken.py")
        assert report.parse_errors and not report.ok

    def test_text_reporter_shows_rule_and_location(self):
        report = lint_source("import time\nt = time.time()\n", path="pkg/mod.py")
        text = render_text(report)
        assert "pkg/mod.py:2:" in text
        assert "DET001" in text

    def test_json_reporter_round_trips(self):
        report = lint_source("import time\nt = time.time()\n", path="mod.py")
        payload = json.loads(render_json(report))
        assert payload["ok"] is False
        assert payload["counts_by_rule"] == {"DET001": 1}
        assert payload["findings"][0]["line"] == 2

    def test_rule_list_rendering(self):
        listing = render_rule_list()
        for rule_id in RULE_IDS:
            assert rule_id in listing

    def test_default_config_protects_core_sim_bgp(self):
        config = LintConfig()
        assert config.is_protected_module("repro.core.damping")
        assert config.is_protected_module("repro.sim")
        assert not config.is_protected_module("repro.experiments.fig10")
        assert not config.is_protected_module(None)


# ----------------------------------------------------------------------
# pass selection
# ----------------------------------------------------------------------


class TestPassSelection:
    SOURCE = (
        "import time\n"
        "def f(rcn, last_seq):\n"
        "    t = time.time()\n"
        "    return rcn.seq != last_seq\n"
    )

    def test_det_pass_runs_only_det_rules(self):
        report = lint_source(self.SOURCE, config=make_config(passes=("det",)))
        assert {f.rule_id for f in report.findings} == {"DET001"}

    def test_sem_pass_runs_only_sem_rules(self):
        report = lint_source(self.SOURCE, config=make_config(passes=("sem",)))
        assert {f.rule_id for f in report.findings} == {"SEM006"}

    def test_all_expands_to_both(self):
        report = lint_source(self.SOURCE, config=make_config(passes=("all",)))
        assert {f.rule_id for f in report.findings} == {"DET001", "SEM006"}

    def test_unknown_pass_rejected(self):
        config = make_config(passes=("mem",))
        with pytest.raises(ConfigurationError):
            config.validate(all_rule_ids())

    def test_empty_pass_set_rejected(self):
        config = make_config(passes=())
        with pytest.raises(ConfigurationError):
            config.validate(all_rule_ids())


# ----------------------------------------------------------------------
# suppression scoping: continuation and decorator lines
# ----------------------------------------------------------------------


class TestSuppressionScoping:
    def test_directive_on_continuation_line_is_honoured(self):
        # The flagged call spans three lines; the directive sits on the
        # last one, not on the anchor line.
        assert not findings_for(
            """
            def order(routers):
                return sorted(
                    routers,
                    key=hash,  # detlint: disable=DET004
                )
            """
        )

    def test_directive_on_decorator_line_covers_the_def(self):
        source = """
            import functools

            def mutable_default_ok(fn):
                return fn

            @mutable_default_ok  # detlint: disable=DET008
            def configure(overrides={}):
                return overrides
            """
        assert not findings_for(source)

    def test_directive_inside_function_body_does_not_cover_def_finding(self):
        # SEM001 anchors at the def header; a disable=all buried in the
        # body must not silence it.
        report = lint_source(
            textwrap.dedent(
                """
                def select_best(candidates, engine):
                    t = engine.now  # detlint: disable=all
                    return max(candidates)
                """
            ),
            module="repro.bgp.decision",
        )
        assert {f.rule_id for f in report.findings} == {"SEM001"}

    def test_directive_on_def_header_covers_def_finding(self):
        report = lint_source(
            textwrap.dedent(
                """
                def select_best(candidates, engine):  # detlint: disable=SEM001
                    t = engine.now
                    return max(candidates)
                """
            ),
            module="repro.bgp.decision",
        )
        assert not report.findings
        assert [f.rule_id for f in report.suppressed] == ["SEM001"]


# ----------------------------------------------------------------------
# JSON reporter schema
# ----------------------------------------------------------------------

#: Hand-written schema for the JSON report: field name -> required type.
_REPORT_SCHEMA = {
    "ok": bool,
    "files_checked": int,
    "finding_count": int,
    "counts_by_rule": dict,
    "findings": list,
    "suppressed": list,
    "baselined": list,
    "parse_errors": list,
}

_FINDING_SCHEMA = {
    "rule": str,
    "message": str,
    "path": str,
    "line": int,
    "col": int,
    "end_line": int,
    "severity": str,
    "suppressed": bool,
    "baselined": bool,
}


def _check_schema(payload: dict, schema: dict) -> None:
    assert set(payload) == set(schema), (
        f"field mismatch: {sorted(set(payload) ^ set(schema))}"
    )
    for name, expected_type in schema.items():
        assert isinstance(payload[name], expected_type), (
            f"{name}: expected {expected_type.__name__}, "
            f"got {type(payload[name]).__name__}"
        )


class TestJsonSchema:
    def test_report_and_findings_match_schema(self):
        report = lint_source(
            "import time\n"
            "a = time.time()\n"
            "b = time.time()  # detlint: disable=DET001\n",
            path="mod.py",
        )
        payload = json.loads(render_json(report))
        _check_schema(payload, _REPORT_SCHEMA)
        assert payload["findings"] and payload["suppressed"]
        for row in payload["findings"] + payload["suppressed"]:
            _check_schema(row, _FINDING_SCHEMA)
        assert payload["findings"][0]["end_line"] >= payload["findings"][0]["line"]

    def test_schema_round_trip_preserves_counts(self):
        report = lint_source(
            "import time, random\nt = time.time()\nr = random.random()\n",
            path="mod.py",
        )
        payload = json.loads(render_json(report))
        assert payload["finding_count"] == len(payload["findings"]) == 2
        assert payload["counts_by_rule"] == {"DET001": 1, "DET002": 1}
        # Round-trip: serialising the parsed payload again is stable.
        assert json.loads(json.dumps(payload)) == payload


# ----------------------------------------------------------------------
# baseline record / compare
# ----------------------------------------------------------------------


class TestBaseline:
    def _report(self):
        return lint_source(
            "import time\na = time.time()\nb = time.time()\n", path="mod.py"
        )

    def test_render_and_parse_round_trip(self):
        from repro.lint import parse_baseline, render_baseline

        report = self._report()
        counts = parse_baseline(render_baseline(report))
        assert len(counts) == 1  # same message, same path -> one key
        assert list(counts.values()) == [2]

    def test_apply_baseline_demotes_matches(self):
        from repro.lint import apply_baseline, baseline_counts

        report = self._report()
        filtered = apply_baseline(report, baseline_counts(report.findings))
        assert filtered.ok
        assert not filtered.findings
        assert len(filtered.baselined) == 2
        assert all(f.baselined for f in filtered.baselined)

    def test_extra_occurrences_beyond_count_still_fail(self):
        from repro.lint import apply_baseline

        report = self._report()
        key = report.findings[0].baseline_key
        filtered = apply_baseline(report, {key: 1})
        assert len(filtered.baselined) == 1
        assert len(filtered.findings) == 1
        assert not filtered.ok

    def test_baseline_key_is_line_independent(self):
        early = lint_source("import time\na = time.time()\n", path="mod.py")
        shifted = lint_source(
            "import time\n\n\n\na = time.time()\n", path="mod.py"
        )
        assert (
            early.findings[0].baseline_key == shifted.findings[0].baseline_key
        )
        assert early.findings[0].line != shifted.findings[0].line

    def test_malformed_baseline_rejected(self):
        from repro.lint import parse_baseline

        with pytest.raises(ConfigurationError):
            parse_baseline("not json")
        with pytest.raises(ConfigurationError):
            parse_baseline('{"version": 99, "findings": {}}')
        with pytest.raises(ConfigurationError):
            parse_baseline('{"version": 1, "findings": {"k": -3}}')

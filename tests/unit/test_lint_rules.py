"""Unit tests for the detlint rule catalogue.

Every rule gets the same three-way treatment: a small synthetic fixture
that must fire, the same fixture with a ``# detlint: disable=...``
comment that must stay silent, and compliant code the rule must not
flag. Framework behaviour (suppressions, select/ignore, reporters,
module scoping) is covered at the end.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    LintConfig,
    RULE_IDS,
    all_rule_ids,
    iter_rules,
    lint_paths,
    lint_source,
    make_config,
    parse_suppressions,
    render_json,
    render_rule_list,
    render_text,
)


def findings_for(source: str, module: str = "repro.sim.fixture") -> list:
    report = lint_source(textwrap.dedent(source), path="fixture.py", module=module)
    assert not report.parse_errors
    return report.findings


def rule_ids_of(source: str, module: str = "repro.sim.fixture") -> set:
    return {f.rule_id for f in findings_for(source, module=module)}


# ----------------------------------------------------------------------
# DET001 — wall-clock
# ----------------------------------------------------------------------


class TestDET001:
    def test_fires_on_time_time(self):
        ids = rule_ids_of(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert "DET001" in ids

    def test_fires_on_datetime_now_and_aliased_import(self):
        ids = rule_ids_of(
            """
            from datetime import datetime
            import time as clock

            def stamps():
                return datetime.now(), clock.monotonic()
            """
        )
        assert ids == {"DET001"}
        assert len(findings_for(
            """
            from datetime import datetime
            import time as clock

            def stamps():
                return datetime.now(), clock.monotonic()
            """
        )) == 2

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            import time

            def stamp():
                return time.time()  # detlint: disable=DET001
            """
        )

    def test_quiet_on_engine_clock(self):
        assert not findings_for(
            """
            def stamp(engine):
                return engine.now
            """
        )

    def test_quiet_on_unrelated_time_attribute(self):
        # record.time is simulated time, not the time module
        assert not findings_for(
            """
            def first(records):
                return [r.time for r in records]
            """
        )


# ----------------------------------------------------------------------
# DET002 — global random state
# ----------------------------------------------------------------------


class TestDET002:
    def test_fires_on_module_level_random(self):
        ids = rule_ids_of(
            """
            import random

            def jitter():
                return random.uniform(0.0, 1.0)
            """
        )
        assert "DET002" in ids

    def test_fires_on_literal_seeded_random(self):
        ids = rule_ids_of(
            """
            import random

            def chooser():
                return random.Random(0)
            """
        )
        assert "DET002" in ids

    def test_fires_on_unseeded_random_constructor(self):
        ids = rule_ids_of(
            """
            import random

            def chooser():
                return random.Random()
            """
        )
        assert "DET002" in ids

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            import random

            def jitter():
                return random.random()  # detlint: disable=DET002
            """
        )

    def test_quiet_on_injected_generator_and_derived_seed(self):
        assert not findings_for(
            """
            import random

            def jitter(rng):
                return rng.uniform(0.0, 1.0)

            def derived(seed):
                return random.Random(seed + 1)
            """
        )


# ----------------------------------------------------------------------
# DET003 — set iteration
# ----------------------------------------------------------------------


class TestDET003:
    def test_fires_on_set_literal_loop(self):
        ids = rule_ids_of(
            """
            def drain(a, b):
                for router in {a, b}:
                    router.flush()
            """
        )
        assert "DET003" in ids

    def test_fires_on_set_call_and_comprehension(self):
        source = """
            def emit(names):
                for name in set(names):
                    print(name)
                return [n for n in {x.strip() for x in names}]
            """
        assert "DET003" in rule_ids_of(source)
        assert len([f for f in findings_for(source) if f.rule_id == "DET003"]) >= 2

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def drain(a, b):
                for router in {a, b}:  # detlint: disable=DET003
                    router.flush()
            """
        )

    def test_quiet_on_sorted_set(self):
        assert not findings_for(
            """
            def drain(names):
                for name in sorted(set(names)):
                    print(name)
            """
        )


# ----------------------------------------------------------------------
# DET004 — hash()/id() ordering
# ----------------------------------------------------------------------


class TestDET004:
    def test_fires_on_hash_sort_key(self):
        ids = rule_ids_of(
            """
            def order(routers):
                return sorted(routers, key=hash)
            """
        )
        assert "DET004" in ids

    def test_fires_on_id_in_lambda_key_and_dict_key(self):
        findings = [
            f
            for f in findings_for(
                """
                def order(routers, a, b):
                    routers.sort(key=lambda r: id(r))
                    table = {hash(a): a}
                    table[id(b)] = b
                    return table
                """
            )
            if f.rule_id == "DET004"
        ]
        assert len(findings) == 3

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def order(routers):
                return sorted(routers, key=hash)  # detlint: disable=DET004
            """
        )

    def test_quiet_on_name_keys(self):
        assert not findings_for(
            """
            def order(routers):
                return sorted(routers, key=lambda r: r.name)
            """
        )


# ----------------------------------------------------------------------
# DET005 — float time equality
# ----------------------------------------------------------------------


class TestDET005:
    def test_fires_on_time_equality(self):
        ids = rule_ids_of(
            """
            def same_instant(event, engine):
                return event.time == engine.now
            """
        )
        assert "DET005" in ids

    def test_fires_on_inequality(self):
        ids = rule_ids_of(
            """
            def moved(expiry, deadline):
                return expiry != deadline
            """
        )
        assert "DET005" in ids

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def same_instant(event, engine):
                return event.time == engine.now  # detlint: disable=DET005
            """
        )

    def test_quiet_on_tolerance_nan_check_and_tags(self):
        assert not findings_for(
            """
            def ok(event, engine, record):
                close = abs(event.time - engine.now) <= 1e-9
                nan = event.time != event.time
                tag = record.kind == "reuse"
                return close or nan or tag
            """
        )


# ----------------------------------------------------------------------
# DET006 — re-entrant engine runs
# ----------------------------------------------------------------------


class TestDET006:
    def test_fires_on_closure_calling_run(self):
        ids = rule_ids_of(
            """
            def schedule_probe(engine):
                def probe():
                    engine.run(until=engine.now + 1.0)
                engine.schedule(0.0, probe)
            """
        )
        assert "DET006" in ids

    def test_fires_on_lambda_and_self_engine(self):
        ids = rule_ids_of(
            """
            class Driver:
                def arm(self):
                    self._engine.schedule(0.0, lambda: self._engine.step())
            """
        )
        assert "DET006" in ids

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def schedule_probe(engine):
                def probe():
                    engine.run()  # detlint: disable=DET006
                engine.schedule(0.0, probe)
            """
        )

    def test_quiet_on_top_level_run_and_other_receivers(self):
        assert not findings_for(
            """
            def drive(engine, scenario):
                engine.run_until_idle(max_time=100.0)
                return scenario.run(None)

            class Scenario:
                def run(self, schedule):
                    self.engine.run_until_idle(max_time=10.0)
            """
        )


# ----------------------------------------------------------------------
# DET007 — ambient environment access
# ----------------------------------------------------------------------


class TestDET007:
    def test_fires_inside_protected_package(self):
        ids = rule_ids_of(
            """
            import os

            def load():
                flag = os.environ["REPRO_DEBUG"]
                with open("params.txt") as handle:
                    return flag, handle.read()
            """,
            module="repro.core.fixture",
        )
        assert "DET007" in ids

    def test_fires_on_getenv_and_path_reads(self):
        findings = [
            f
            for f in findings_for(
                """
                import os
                import pathlib

                def load(path):
                    a = os.getenv("SEED")
                    b = pathlib.Path(path).read_text()
                    return a, b
                """,
                module="repro.bgp.fixture",
            )
            if f.rule_id == "DET007"
        ]
        assert len(findings) == 2

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            import os

            def load():
                return os.getenv("SEED")  # detlint: disable=DET007
            """,
            module="repro.sim.fixture",
        )

    def test_quiet_outside_protected_packages(self):
        assert not findings_for(
            """
            import os

            def load():
                return os.getenv("SEED")
            """,
            module="repro.experiments.fixture",
        )


# ----------------------------------------------------------------------
# DET008 — mutable defaults
# ----------------------------------------------------------------------


class TestDET008:
    def test_fires_on_public_list_default(self):
        ids = rule_ids_of(
            """
            def run_episode(pulses, hooks=[]):
                return pulses, hooks
            """
        )
        assert "DET008" in ids

    def test_fires_on_dict_set_and_constructor_defaults(self):
        findings = [
            f
            for f in findings_for(
                """
                def configure(overrides={}, tags=set(), *, extra=list()):
                    return overrides, tags, extra
                """
            )
            if f.rule_id == "DET008"
        ]
        assert len(findings) == 3

    def test_respects_disable_comment(self):
        assert not findings_for(
            """
            def run_episode(pulses, hooks=[]):  # detlint: disable=DET008
                return pulses, hooks
            """
        )

    def test_quiet_on_none_default_and_private_helpers(self):
        assert not findings_for(
            """
            def run_episode(pulses, hooks=None):
                return pulses, hooks or []

            def _internal(cache=[]):
                return cache
            """
        )


# ----------------------------------------------------------------------
# framework behaviour
# ----------------------------------------------------------------------


class TestFramework:
    def test_catalogue_is_complete(self):
        expected = {f"DET00{i}" for i in range(1, 9)}
        assert set(RULE_IDS) == expected
        assert all_rule_ids() == frozenset(expected)

    def test_every_rule_has_title_and_rationale(self):
        for rule in iter_rules():
            assert rule.id and rule.title and rule.rationale

    def test_disable_all_token(self):
        assert not findings_for(
            """
            import time

            def stamp():
                return time.time()  # detlint: disable=all
            """
        )

    def test_suppressed_findings_are_still_recorded(self):
        report = lint_source(
            "import time\nt = time.time()  # detlint: disable=DET001\n",
            path="fixture.py",
        )
        assert not report.findings
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppressed

    def test_parse_suppressions_ignores_strings(self):
        mapping = parse_suppressions(
            's = "# detlint: disable=DET001"\nt = 1  # detlint: disable=DET002,DET003\n'
        )
        assert mapping == {2: {"DET002", "DET003"}}

    def test_select_and_ignore(self):
        source = "import time, random\na = time.time()\nb = random.random()\n"
        only_001 = lint_source(
            source, config=make_config(select=("DET001",))
        ).findings
        assert {f.rule_id for f in only_001} == {"DET001"}
        without_001 = lint_source(
            source, config=make_config(ignore=("DET001",))
        ).findings
        assert {f.rule_id for f in without_001} == {"DET002"}

    def test_unknown_rule_id_rejected(self):
        config = make_config(select=("DET999",))
        with pytest.raises(ConfigurationError):
            config.validate(all_rule_ids())

    def test_lint_paths_on_fixture_dir(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        (tmp_path / "good.py").write_text("x = 1\n", encoding="utf-8")
        report = lint_paths([str(tmp_path)])
        assert report.files_checked == 2
        assert [f.rule_id for f in report.findings] == ["DET001"]
        assert report.findings[0].path.endswith("bad.py")
        assert not report.ok

    def test_parse_error_is_reported_not_raised(self):
        report = lint_source("def broken(:\n", path="broken.py")
        assert report.parse_errors and not report.ok

    def test_text_reporter_shows_rule_and_location(self):
        report = lint_source("import time\nt = time.time()\n", path="pkg/mod.py")
        text = render_text(report)
        assert "pkg/mod.py:2:" in text
        assert "DET001" in text

    def test_json_reporter_round_trips(self):
        report = lint_source("import time\nt = time.time()\n", path="mod.py")
        payload = json.loads(render_json(report))
        assert payload["ok"] is False
        assert payload["counts_by_rule"] == {"DET001": 1}
        assert payload["findings"][0]["line"] == 2

    def test_rule_list_rendering(self):
        listing = render_rule_list()
        for rule_id in RULE_IDS:
            assert rule_id in listing

    def test_default_config_protects_core_sim_bgp(self):
        config = LintConfig()
        assert config.is_protected_module("repro.core.damping")
        assert config.is_protected_module("repro.sim")
        assert not config.is_protected_module("repro.experiments.fig10")
        assert not config.is_protected_module(None)

"""Unit tests for lazy penalty bookkeeping."""

from __future__ import annotations

import pytest

from repro.core.params import CISCO_DEFAULTS, UpdateKind
from repro.core.penalty import PenaltyState
from repro.errors import SimulationError


@pytest.fixture
def state():
    return PenaltyState(CISCO_DEFAULTS)


def test_initial_value_zero(state):
    assert state.value_at(0.0) == 0.0
    assert state.value_at(100.0) == 0.0


def test_charge_withdrawal(state):
    assert state.charge(0.0, UpdateKind.WITHDRAWAL) == 1000.0


def test_charge_sequence_decays_between_events(state):
    state.charge(0.0, UpdateKind.WITHDRAWAL)
    value = state.charge(CISCO_DEFAULTS.half_life, UpdateKind.WITHDRAWAL)
    assert value == pytest.approx(1500.0)


def test_paper_penalty_recurrence(state):
    """p(k) = p(k-1) e^{-lambda w} + f(k): three withdrawals 120s apart."""
    params = CISCO_DEFAULTS
    state.charge(0.0, UpdateKind.WITHDRAWAL)
    state.charge(120.0, UpdateKind.WITHDRAWAL)
    value = state.charge(240.0, UpdateKind.WITHDRAWAL)
    expected = (
        1000.0 * params.decay(1.0, 240.0)
        + 1000.0 * params.decay(1.0, 120.0)
        + 1000.0
    )
    assert value == pytest.approx(expected)
    assert value > params.cutoff_threshold  # 3rd flap triggers suppression


def test_two_withdrawals_stay_under_cutoff(state):
    """The paper: n=1 or 2 pulses do not trigger suppression at the ISP."""
    state.charge(0.0, UpdateKind.WITHDRAWAL)
    value = state.charge(120.0, UpdateKind.WITHDRAWAL)
    assert value < CISCO_DEFAULTS.cutoff_threshold


def test_reannouncement_adds_nothing_with_cisco(state):
    state.charge(0.0, UpdateKind.WITHDRAWAL)
    value = state.charge(60.0, UpdateKind.REANNOUNCEMENT)
    assert value == pytest.approx(CISCO_DEFAULTS.decay(1000.0, 60.0))


def test_duplicate_adds_nothing(state):
    state.charge(0.0, UpdateKind.WITHDRAWAL)
    before = state.value_at(10.0)
    after = state.charge(10.0, UpdateKind.DUPLICATE)
    assert after == pytest.approx(before)


def test_ceiling_caps_penalty(state):
    for i in range(30):
        state.charge(float(i), UpdateKind.WITHDRAWAL)
    assert state.value_at(30.0) <= CISCO_DEFAULTS.penalty_ceiling


def test_query_before_stamp_raises(state):
    state.charge(100.0, UpdateKind.WITHDRAWAL)
    with pytest.raises(SimulationError):
        state.value_at(50.0)


def test_negative_increment_raises(state):
    with pytest.raises(SimulationError):
        state.add(0.0, -5.0)


def test_touch_reanchors_without_charging(state):
    state.charge(0.0, UpdateKind.WITHDRAWAL)
    touched = state.touch(CISCO_DEFAULTS.half_life)
    assert touched == pytest.approx(500.0)
    assert state.value_at(CISCO_DEFAULTS.half_life) == pytest.approx(500.0)
    # History records only charges, not touches.
    assert len(state.history) == 1


def test_reset(state):
    state.charge(0.0, UpdateKind.WITHDRAWAL)
    state.reset(10.0)
    assert state.value_at(10.0) == 0.0


def test_exceeds_cutoff_and_below_reuse(state):
    state.add(0.0, 2500.0)
    assert state.exceeds_cutoff(0.0)
    assert not state.below_reuse(0.0)
    # After enough decay the value passes below reuse.
    delay = CISCO_DEFAULTS.reuse_delay(2500.0)
    assert not state.exceeds_cutoff(delay + 1.0)
    assert state.below_reuse(delay + 1.0)


def test_reuse_delay_decreases_over_time(state):
    state.add(0.0, 3000.0)
    assert state.reuse_delay(0.0) > state.reuse_delay(500.0) > 0.0


def test_history_records_charge_values(state):
    state.charge(0.0, UpdateKind.WITHDRAWAL)
    state.charge(60.0, UpdateKind.ATTRIBUTE_CHANGE)
    assert [t for t, _ in state.history] == [0.0, 60.0]
    assert state.history[1][1] == pytest.approx(
        CISCO_DEFAULTS.decay(1000.0, 60.0) + 500.0
    )


def test_zero_increment_not_recorded_in_history(state):
    state.charge(0.0, UpdateKind.REANNOUNCEMENT)  # +0 with Cisco
    assert state.history == []


def test_sample_curve_matches_analytic_decay(state):
    state.add(0.0, 1000.0)
    samples = dict(state.sample_curve(0.0, 900.0, 450.0))
    assert samples[0.0] == pytest.approx(1000.0)
    assert samples[450.0] == pytest.approx(CISCO_DEFAULTS.decay(1000.0, 450.0))
    assert samples[900.0] == pytest.approx(500.0)


def test_sample_curve_zero_before_first_charge(state):
    state.add(100.0, 1000.0)
    samples = dict(state.sample_curve(0.0, 100.0, 50.0))
    assert samples[0.0] == 0.0
    assert samples[50.0] == 0.0
    assert samples[100.0] == pytest.approx(1000.0)


def test_sample_curve_bad_step_raises(state):
    with pytest.raises(SimulationError):
        state.sample_curve(0.0, 10.0, 0.0)

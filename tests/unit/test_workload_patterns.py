"""Unit tests for irregular flap patterns."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.patterns import (
    burst_pattern,
    describe_pattern,
    jittered_pattern,
    pattern_by_name,
    poisson_pattern,
)
from repro.workload.pulses import PulseSchedule


@pytest.fixture
def rng():
    return random.Random(7)


class TestPoisson:
    def test_structure(self, rng):
        schedule = poisson_pattern(5, 60.0, 120.0, rng)
        assert schedule.pulse_count == 5
        assert schedule.events[-1][1] == "up"
        statuses = [status for _, status in schedule.events]
        assert statuses == ["down", "up"] * 5

    def test_min_gap_respected(self, rng):
        schedule = poisson_pattern(20, 0.001, 0.001, rng, min_gap=5.0)
        offsets = [offset for offset, _ in schedule.events]
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert all(gap >= 5.0 for gap in gaps)

    def test_deterministic_for_seed(self):
        a = poisson_pattern(5, 60.0, 60.0, random.Random(1))
        b = poisson_pattern(5, 60.0, 60.0, random.Random(1))
        assert a.events == b.events

    def test_zero_pulses(self, rng):
        assert poisson_pattern(0, 60.0, 60.0, rng).events == ()

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            poisson_pattern(-1, 60.0, 60.0, rng)
        with pytest.raises(ConfigurationError):
            poisson_pattern(1, 0.0, 60.0, rng)
        with pytest.raises(ConfigurationError):
            poisson_pattern(1, 60.0, 60.0, rng, min_gap=0.0)


class TestJittered:
    def test_preserves_structure(self, rng):
        schedule = jittered_pattern(4, 60.0, 0.25, rng)
        assert schedule.pulse_count == 4
        statuses = [status for _, status in schedule.events]
        assert statuses == ["down", "up"] * 4

    def test_events_near_regular_grid(self, rng):
        schedule = jittered_pattern(4, 60.0, 0.2, rng)
        regular = PulseSchedule.regular(4, 60.0)
        for (jittered, _), (base, _) in zip(schedule.events, regular.events):
            assert abs(jittered - base) <= 0.2 * 60.0 + 1e-9

    def test_zero_jitter_is_regular(self, rng):
        schedule = jittered_pattern(3, 60.0, 0.0, rng)
        regular = PulseSchedule.regular(3, 60.0)
        for (a, _), (b, _) in zip(schedule.events, regular.events):
            assert a == pytest.approx(b)

    def test_jitter_bounds_validated(self, rng):
        with pytest.raises(ConfigurationError):
            jittered_pattern(3, 60.0, 0.5, rng)
        with pytest.raises(ConfigurationError):
            jittered_pattern(3, 60.0, -0.1, rng)


class TestBurst:
    def test_structure(self):
        schedule = burst_pattern(2, 3, intra_burst_interval=5.0, inter_burst_gap=600.0)
        assert schedule.pulse_count == 6
        offsets = [offset for offset, _ in schedule.events]
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert max(gaps) >= 600.0  # the inter-burst gap is visible
        assert min(gaps) == pytest.approx(5.0)

    def test_single_burst(self):
        schedule = burst_pattern(1, 2, 10.0, 1000.0)
        assert schedule.pulse_count == 2
        assert schedule.duration < 100.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            burst_pattern(1, 0, 5.0, 100.0)
        with pytest.raises(ConfigurationError):
            burst_pattern(1, 1, 0.0, 100.0)


class TestHelpers:
    def test_describe_pattern(self, rng):
        schedule = poisson_pattern(3, 60.0, 60.0, rng)
        description = describe_pattern(schedule)
        assert description["pulses"] == 3
        assert description["duration"] == schedule.duration
        assert description["min_gap"] > 0

    def test_describe_empty(self):
        description = describe_pattern(PulseSchedule.regular(0))
        assert description["pulses"] == 0
        assert description["min_gap"] is None

    def test_pattern_by_name(self, rng):
        for name in ("regular", "poisson", "jittered", "burst"):
            schedule = pattern_by_name(name, 3, 60.0, rng)
            assert schedule.pulse_count >= 1
        with pytest.raises(ConfigurationError):
            pattern_by_name("chaotic", 3, 60.0, rng)

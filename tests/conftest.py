"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.params import CISCO_DEFAULTS
from repro.net.link import LinkConfig
from repro.net.network import Network
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.topology.mesh import mesh_topology
from repro.workload.scenarios import ScenarioConfig


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(12345)


@pytest.fixture
def network(engine: Engine, rng: RngRegistry) -> Network:
    return Network(engine, rng)


@pytest.fixture
def small_mesh():
    return mesh_topology(4, 4)


@pytest.fixture
def fast_config(small_mesh) -> ScenarioConfig:
    """A small, fast scenario used by integration tests."""
    return ScenarioConfig(
        topology=small_mesh,
        damping=CISCO_DEFAULTS,
        seed=7,
        link=LinkConfig(base_delay=0.01, jitter=0.02),
    )

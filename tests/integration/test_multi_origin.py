"""Integration tests for multi-origin (multi-prefix) scenarios."""

from __future__ import annotations

import pytest

from repro.core.params import CISCO_DEFAULTS
from repro.errors import ConfigurationError, SimulationError
from repro.topology.mesh import mesh_topology
from repro.workload.multi import MultiOriginScenario
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import ScenarioConfig


@pytest.fixture
def config():
    return ScenarioConfig(topology=mesh_topology(5, 5), damping=CISCO_DEFAULTS, seed=9)


def test_warmup_converges_all_prefixes(config):
    scenario = MultiOriginScenario(config, origin_count=3)
    scenario.warm_up()
    for router in scenario.routers.values():
        for origin in scenario.origins:
            assert router.has_route(origin.prefix)


def test_origins_have_distinct_prefixes_and_isps(config):
    scenario = MultiOriginScenario(config, origin_count=3)
    prefixes = {origin.prefix for origin in scenario.origins}
    isps = {origin.isp for origin in scenario.origins}
    assert len(prefixes) == 3
    assert len(isps) == 3


def test_stable_prefix_unaffected_by_other_flapping(config):
    scenario = MultiOriginScenario(config, origin_count=2)
    result = scenario.run([PulseSchedule.regular(1, 60.0), None])
    by_prefix = {outcome.prefix: outcome for outcome in result.outcomes}
    # The flapping prefix generated traffic; the stable one stayed quiet.
    assert by_prefix["p0"].message_count > 0
    assert by_prefix["p1"].message_count == 0
    assert by_prefix["p1"].convergence_time == 0.0


def test_concurrent_flapping_prefixes_both_measured(config):
    scenario = MultiOriginScenario(config, origin_count=2)
    result = scenario.run(
        [PulseSchedule.regular(1, 60.0), PulseSchedule.regular(3, 60.0)]
    )
    by_prefix = {outcome.prefix: outcome for outcome in result.outcomes}
    assert by_prefix["p0"].message_count > 0
    assert by_prefix["p1"].message_count > 0
    assert (
        result.total_messages
        == by_prefix["p0"].message_count + by_prefix["p1"].message_count
    )
    assert by_prefix["p0"].pulses == 1
    assert by_prefix["p1"].pulses == 3


def test_per_prefix_damping_is_independent(config):
    """Damping penalties are per (peer, prefix): flapping p0 must not
    suppress anyone's p1 entries."""
    scenario = MultiOriginScenario(config, origin_count=2)
    scenario.warm_up()
    result = scenario.run([PulseSchedule.regular(3, 60.0), None])
    del result
    for router in scenario.routers.values():
        if router.damping is None:
            continue
        for peer, prefix in router.damping.suppressed_entries():
            assert prefix == "p0", f"{router.name} suppressed {prefix} via {peer}"


def test_schedule_count_must_match(config):
    scenario = MultiOriginScenario(config, origin_count=2)
    with pytest.raises(ConfigurationError):
        scenario.run([PulseSchedule.regular(1)])


def test_run_twice_rejected(config):
    scenario = MultiOriginScenario(config, origin_count=1)
    scenario.run([PulseSchedule.regular(1)])
    with pytest.raises(SimulationError):
        scenario.run([PulseSchedule.regular(1)])


def test_origin_count_validation(config):
    with pytest.raises(ConfigurationError):
        MultiOriginScenario(config, origin_count=0)
    with pytest.raises(ConfigurationError):
        MultiOriginScenario(config, origin_count=26)


def test_irregular_pattern_through_scenario(config):
    import random

    from repro.workload.patterns import poisson_pattern

    scenario = MultiOriginScenario(config, origin_count=1)
    schedule = poisson_pattern(2, 60.0, 60.0, random.Random(3))
    result = scenario.run([schedule])
    assert result.outcomes[0].message_count > 0
    assert scenario.engine.pending_count == 0

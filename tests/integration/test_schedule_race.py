"""The runtime schedule-race detector on the paper's Figure 10 workload.

Two guarantees are under test. First, detection is *passive*: a fig10
episode with the detector enabled must produce bit-identical headline
results to the undetected run, because recording ties never reorders
events. Second, every tie the standard workload does produce must fall
in the known-benign allowlist — same-instant deliveries to one router
from different neighbours, which the mesh's symmetric link delays make
routine and which per-link FIFO plus ``(time, seq)`` ordering resolves
deterministically. Any new tag pair showing up here (e.g. a reuse timer
colliding with a delivery) is exactly the ordering-dependence the
detector exists to surface, and fails the suite until triaged.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.base import DEFAULT_SEED, mesh100_config
from repro.experiments.fig10 import FIG10_PULSE_COUNTS, fig10_experiment
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import FlapRunResult, Scenario

#: Tie tag pairs that are understood and safe on the standard workload.
#: ("deliver", "deliver"): two neighbours' updates reaching the same
#: router at the same instant — resolved by scheduling order, which the
#: per-link FIFO floor makes deterministic.
BENIGN_TIE_TAGS = frozenset({("deliver", "deliver")})


def _run_episode(pulses: int, detect: bool) -> FlapRunResult:
    config = replace(
        mesh100_config(seed=DEFAULT_SEED), detect_schedule_ties=detect
    )
    scenario = Scenario(config)
    scenario.warm_up()
    return scenario.run(PulseSchedule.regular(pulses, 60.0))


def _headline(result: FlapRunResult) -> tuple:
    return (
        result.convergence_time,
        result.message_count,
        result.end_time,
        result.warmup_convergence,
        result.summary.total_suppressions,
        result.summary.peak_damped_links,
        result.summary.noisy_reuses,
        result.summary.silent_reuses,
        result.summary.secondary_charges,
        [u.time for u in result.collector.updates],
    )


@pytest.mark.parametrize("pulses", FIG10_PULSE_COUNTS)
def test_detector_is_passive_results_bit_identical(pulses):
    baseline = _run_episode(pulses, detect=False)
    detected = _run_episode(pulses, detect=True)
    assert _headline(detected) == _headline(baseline)
    assert baseline.collector.tie_count == 0  # detector off records nothing
    assert detected.collector.tie_count > 0  # the mesh workload does tie


@pytest.mark.parametrize("pulses", FIG10_PULSE_COUNTS)
def test_all_reported_ties_are_known_benign(pulses):
    result = _run_episode(pulses, detect=True)
    unexpected = {
        pair
        for pair in result.collector.ties_by_tag_pair()
        if pair not in BENIGN_TIE_TAGS
    }
    assert not unexpected, (
        f"new schedule-tie kinds {sorted(unexpected)} — ordering-dependent "
        "behaviour changed; triage before allowlisting (docs/STATIC_ANALYSIS.md)"
    )
    for tie in result.collector.schedule_ties:
        assert tie.first_seq < tie.second_seq
        assert tie.actor  # every tie names the router it touches


def test_fig10_experiment_accepts_detected_runs():
    """The full fig10 driver consumes detector-enabled episodes unchanged."""
    results = {n: _run_episode(n, detect=True) for n in (1,)}
    experiment = fig10_experiment(pulse_counts=(1,), results=results)
    rendered = experiment.render()
    assert "Update Series" in rendered
    assert experiment.rows[0][0] == 1


def test_warmup_ties_are_excluded_from_the_measured_episode():
    result = _run_episode(1, detect=True)
    start_of_episode = min(t for t in result.flap_times)
    for tie in result.collector.schedule_ties:
        assert tie.time >= start_of_episode - 1e-9

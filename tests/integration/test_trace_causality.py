"""Integration tests for causal tracing: determinism across seeds and
worker counts, and agreement with the windowed attribution estimator.

The determinism contract is byte-level: the canonical JSONL a traced
episode writes must be identical whatever ``--jobs`` is, because each
per-point file is produced wholly by one deterministic run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.attribution import analyze_run
from repro.analysis.causality import analyze_trace, compare_with_attribution
from repro.experiments.base import (
    DEFAULT_SEED,
    mesh100_config,
    small_mesh_config,
)
from repro.experiments.parallel import execute_sweep
from repro.trace import MemorySink, Tracer, parse_jsonl
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario

PULSES = (0, 1, 2)


def _trace_files(trace_dir: pathlib.Path):
    return sorted(trace_dir.glob("point_*.jsonl"))


@pytest.mark.parametrize("seed", [0, 7])
def test_trace_jsonl_byte_identical_jobs_1_vs_2(tmp_path, seed):
    config = small_mesh_config(seed=seed)
    dirs = {}
    outcomes = {}
    for jobs in (1, 2):
        trace_dir = tmp_path / f"jobs{jobs}"
        outcomes[jobs] = execute_sweep(
            config, PULSES, jobs=jobs, trace_dir=str(trace_dir)
        )
        dirs[jobs] = trace_dir

    assert [o.digest for o in outcomes[1]] == [o.digest for o in outcomes[2]]
    assert [o.trace_digest for o in outcomes[1]] == [o.trace_digest for o in outcomes[2]]

    sequential = _trace_files(dirs[1])
    parallel = _trace_files(dirs[2])
    assert [p.name for p in sequential] == [p.name for p in parallel]
    assert len(sequential) == len(PULSES)
    for seq_file, par_file in zip(sequential, parallel):
        assert seq_file.read_bytes() == par_file.read_bytes()


def test_tracing_does_not_perturb_run_digests(tmp_path):
    config = small_mesh_config(seed=3)
    untraced = execute_sweep(config, PULSES, jobs=1)
    traced = execute_sweep(config, PULSES, jobs=1, trace_dir=str(tmp_path / "t"))
    assert [o.digest for o in untraced] == [o.digest for o in traced]
    assert all(o.trace_digest is None for o in untraced)
    assert all(o.trace_digest is not None for o in traced)


def test_trace_files_parse_back_and_analyze(tmp_path):
    outcomes = execute_sweep(
        small_mesh_config(seed=7), (2,), jobs=1, trace_dir=str(tmp_path)
    )
    (trace_file,) = _trace_files(tmp_path)
    records = parse_jsonl(trace_file.read_text(encoding="utf-8"))
    assert records, "a two-pulse episode must emit records"
    # Causes always precede effects.
    for record in records:
        if record.cause_id is not None:
            assert record.cause_id < record.id
    report = analyze_trace(records)
    assert report.records_total == len(records)
    assert report.counts_by_kind["flap"] == 4  # 2 pulses x (down + up)
    assert outcomes[0].trace_digest is not None


def test_causality_agrees_with_windowed_attribution_on_fig8_mesh100():
    """Acceptance criterion: on the paper's fig8 full-damping mesh the
    trace-exact secondary-charging share and attribution.py's windowed
    estimate agree within one percentage point."""
    scenario = Scenario(mesh100_config(seed=DEFAULT_SEED))
    scenario.warm_up()
    tracer = Tracer(MemorySink())
    result = scenario.run(PulseSchedule.regular(3, 60.0), tracer=tracer)
    tracer.close()

    report = analyze_trace(tracer.records)
    windowed = analyze_run(result)
    comparison = compare_with_attribution(report, windowed.secondary_fraction)
    assert comparison["difference"] <= 0.01
    # Both observers count the same postponement events.
    assert report.postponements_total == result.summary.secondary_charges
    assert report.charges_total > 0
    assert report.reuse_muffled == report.reuse_muffled_childless

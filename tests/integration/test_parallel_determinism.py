"""Parallel sweeps must be digest-identical to sequential ones.

The executor's contract (see ``repro.experiments.parallel``) is that
``jobs`` never changes results: every point derives its randomness from
its own config seed, workers are spawn-context (no inherited state), and
outcomes are collected in submission order. These tests hold it to that
on the paper's two main topologies, across two seeds, comparing the
byte-level metrics digests. The CI matrix runs them on Python 3.9 and
3.12, so the guarantee is checked on both interpreter generations.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.base import (
    DEFAULT_SEED,
    internet100_config,
    mesh100_config,
    run_sweep,
)
from repro.experiments.parallel import (
    available_cpus,
    derive_seed,
    execute_sweep,
    resolve_chunk_size,
    resolve_jobs,
)

#: Four points so ``jobs=4`` actually exercises four spawn workers.
PULSES = (0, 1, 3, 5)

#: Two seeds: the standard one and one derived through the registry's
#: fork stream (also exercising the per-point seed helper).
SEEDS = (DEFAULT_SEED, derive_seed(DEFAULT_SEED, "parallel-determinism"))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "factory", [mesh100_config, internet100_config], ids=["mesh100", "internet100"]
)
def test_parallel_sweep_is_digest_identical_to_sequential(factory, seed):
    config = factory(seed=seed)
    sequential = execute_sweep(config, PULSES, jobs=1)
    parallel = execute_sweep(config, PULSES, jobs=4, mp_start_method="spawn")
    assert [o.digest for o in sequential] == [o.digest for o in parallel]
    # Digest identity should imply metric identity; check it really does.
    assert sequential == parallel


def test_snapshot_reuse_is_digest_identical_to_fresh_warmups():
    """The warm-state snapshot optimisation alone (jobs=1) must not move
    a single byte of the observable event stream."""
    config = mesh100_config(seed=DEFAULT_SEED)
    with_snapshots = execute_sweep(config, PULSES, jobs=1, use_snapshots=True)
    without = execute_sweep(config, PULSES, jobs=1, use_snapshots=False)
    assert with_snapshots == without


def test_run_sweep_records_digests():
    series = run_sweep("series", mesh100_config(), (0, 1))
    assert all(point.digest for point in series.points)
    assert [point.pulses for point in series.points] == [0, 1]


@pytest.mark.parametrize("transport", ["shm", "spill", "inline"])
@pytest.mark.parametrize("chunk_size", [1, 3])
def test_transport_and_chunking_are_digest_identical(transport, chunk_size):
    """Neither the snapshot transport nor the chunk geometry may move a
    byte: the blob a worker restores from is digest-verified identical,
    and collection order is submission order regardless of chunking."""
    config = mesh100_config(seed=DEFAULT_SEED)
    sequential = execute_sweep(config, PULSES, jobs=1)
    parallel = execute_sweep(
        config,
        PULSES,
        jobs=2,
        chunk_size=chunk_size,
        snapshot_transport=transport,
    )
    assert sequential == parallel


def test_resolve_jobs_semantics():
    import os

    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    # jobs=0 means "the CPUs this process may run on" — the affinity
    # mask, not the host's core count, so container CPU limits hold.
    assert resolve_jobs(0) == available_cpus()
    assert 1 <= available_cpus() <= (os.cpu_count() or 1)
    with pytest.raises(ConfigurationError):
        resolve_jobs(-1)


def test_resolve_chunk_size_semantics():
    # Explicit sizes pass through; zero/negative are rejected loudly.
    assert resolve_chunk_size(3, 10, 2) == 3
    with pytest.raises(ConfigurationError):
        resolve_chunk_size(0, 10, 2)
    # Auto mode: sequential keeps one chunk; parallel targets a few
    # chunks per worker and never rounds below one point per chunk.
    assert resolve_chunk_size(None, 5, 1) == 5
    assert resolve_chunk_size(None, 4, 2) == 1
    assert resolve_chunk_size(None, 100, 4) == 7
    assert resolve_chunk_size(None, 1, 8) == 1


def test_derive_seed_is_stable_and_label_sensitive():
    assert derive_seed(42, "a") == derive_seed(42, "a")
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(42, "a") != derive_seed(43, "a")

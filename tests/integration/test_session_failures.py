"""Failure-injection tests: BGP sessions over failing links.

The paper flaps the origin by having it send withdrawals and
announcements; these tests exercise the other way a route disappears —
the physical link under a session going down — and check that the
protocol converges correctly around the failure, that damping state
survives session bounces, and that a mid-episode core-link failure does
not wedge the simulation.
"""

from __future__ import annotations

import pytest

from repro.bgp.mrai import MraiConfig
from repro.bgp.origin import OriginRouter
from repro.bgp.router import BgpRouter, RouterConfig
from repro.core.params import CISCO_DEFAULTS
from repro.net.link import LinkConfig
from repro.net.network import Network
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.topology.mesh import mesh_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig


def build_line(damping=None, charge_on_session_reset=False):
    """origin -- r1 -- r2 -- r3, plus a detour r1 -- r4 -- r3."""
    engine = Engine()
    rng = RngRegistry(11)
    network = Network(engine, rng)
    config = RouterConfig(
        damping=damping,
        mrai=MraiConfig(base=0.0),
        charge_on_session_reset=charge_on_session_reset,
    )
    routers = {}
    for name in ("r1", "r2", "r3", "r4"):
        routers[name] = BgpRouter(name, engine, rng, config=config)
        network.add_node(routers[name])
    origin = OriginRouter("origin", engine, rng, prefix="p0", isp="r1")
    network.add_node(origin)
    link = LinkConfig(base_delay=0.001, jitter=0.0)
    for a, b in (("origin", "r1"), ("r1", "r2"), ("r2", "r3"), ("r1", "r4"), ("r4", "r3")):
        network.add_link(a, b, link)
    origin.bring_up()
    engine.run()
    return engine, network, origin, routers


def test_link_down_withdraws_learned_routes():
    engine, network, origin, routers = build_line()
    assert routers["r2"].has_route("p0")
    network.set_link_state("r1", "r2", False)
    engine.run()
    # r2 lost its session to r1 but reaches the prefix via r3-r4-r1.
    assert routers["r2"].has_route("p0")
    assert routers["r2"].best_route("p0").as_path == ("r3", "r4", "r1", "origin")


def test_link_down_no_alternate_becomes_unreachable():
    engine, network, origin, routers = build_line()
    network.set_link_state("origin", "r1", False)
    engine.run()
    for name in ("r1", "r2", "r3", "r4"):
        assert not routers[name].has_route("p0")


def test_link_recovery_readvertises():
    engine, network, origin, routers = build_line()
    network.set_link_state("r1", "r2", False)
    engine.run()
    network.set_link_state("r1", "r2", True)
    engine.run()
    # Back to the direct path.
    assert routers["r2"].best_route("p0").as_path == ("r1", "origin")
    assert routers["r3"].has_route("p0")


def test_session_reset_uncharged_by_default():
    engine, network, origin, routers = build_line(damping=CISCO_DEFAULTS)
    for _ in range(4):
        network.set_link_state("r1", "r2", False)
        engine.run(until=engine.now + 1.0)
        network.set_link_state("r1", "r2", True)
        engine.run(until=engine.now + 1.0)
    assert routers["r2"].damping.penalty_value("r1", "p0") == 0.0


def test_session_reset_charged_when_configured():
    engine, network, origin, routers = build_line(
        damping=CISCO_DEFAULTS, charge_on_session_reset=True
    )
    network.set_link_state("r1", "r2", False)
    engine.run(until=engine.now + 1.0)
    assert routers["r2"].damping.penalty_value("r1", "p0") == pytest.approx(
        1000.0, rel=0.01
    )


def test_damping_state_survives_session_bounce():
    from repro.bgp.messages import UpdateMessage

    engine, network, origin, routers = build_line(damping=CISCO_DEFAULTS)
    r2 = routers["r2"]
    # Flap r2's view of r1's route directly, so that only the (r1, p0)
    # entry at r2 crosses the cut-off.
    for _ in range(3):
        r2.process_update("r1", UpdateMessage(prefix="p0", as_path=None))
        engine.run(until=engine.now + 1.0)
        r2.process_update(
            "r1", UpdateMessage(prefix="p0", as_path=("r1", "origin"))
        )
        engine.run(until=engine.now + 1.0)
    assert r2.damping.is_suppressed("r1", "p0")
    # With the direct entry suppressed, r2 converged onto the detour.
    assert r2.best_route("p0").as_path == ("r3", "r4", "r1", "origin")
    network.set_link_state("r1", "r2", False)
    engine.run(until=engine.now + 1.0)
    network.set_link_state("r1", "r2", True)
    engine.run(until=engine.now + 1.0)
    # Suppression survives the bounce: r1's fresh announcement cannot be
    # used until the reuse timer fires, so the detour stays selected.
    assert r2.damping.is_suppressed("r1", "p0")
    assert r2.rib_in("r1").route("p0") is not None  # re-learned, unusable
    assert r2.best_route("p0").as_path == ("r3", "r4", "r1", "origin")


def test_set_link_state_idempotent():
    engine, network, origin, routers = build_line()
    network.set_link_state("r1", "r2", False)
    engine.run()
    sent_before = routers["r2"].stats.updates_sent
    network.set_link_state("r1", "r2", False)  # already down: no-op
    engine.run()
    assert routers["r2"].stats.updates_sent == sent_before


def test_core_link_failure_mid_episode_converges():
    """Fail a mesh link in the middle of a damping episode; the episode
    must still drain and the network must still converge."""
    topology = mesh_topology(4, 4)
    config = ScenarioConfig(topology=topology, damping=CISCO_DEFAULTS, seed=5)
    scenario = Scenario(config)
    scenario.warm_up()
    # Break a link not adjacent to the ISP halfway through the episode.
    victim_a, victim_b = next(
        (a, b)
        for a, b in topology.edges
        if scenario.isp not in (a, b)
    )
    scenario.engine.schedule(
        90.0, lambda: scenario.network.set_link_state(victim_a, victim_b, False)
    )
    result = scenario.run(PulseSchedule.regular(1, 60.0))
    assert scenario.engine.pending_count == 0
    for router in scenario.routers.values():
        assert router.has_route(config.prefix)
    assert result.message_count > 0

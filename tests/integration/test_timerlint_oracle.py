"""Seeded-violation cross-check: timerlint vs. the runtime timer audit.

For every TIM rule, a small fixture seeds exactly the hazard the rule
describes and the static pass must flag it. Where the hazard is
dynamically reachable, the runtime side must trip too: the opt-in
:class:`repro.sim.timers.TimerAudit` observes every arm/cancel/fire and
:meth:`~repro.sim.timers.TimerAudit.verify` reports leaks, double-arms
and unmatched fires. Static and dynamic detection bracketing the same
lifecycle contract is the point — the interpreter cannot see through
``getattr`` tricks, the audit cannot see hazards a run never reaches.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.core.params import CISCO_DEFAULTS
from repro.lint import lint_source
from repro.sim.engine import Engine
from repro.sim.timers import Timer
from repro.topology.mesh import mesh_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig

# ----------------------------------------------------------------------
# static side: one seeded violation per TIM rule
# ----------------------------------------------------------------------

_PRELUDE = "from repro.sim.timers import Timer\n\nDELAY = 5.0\n"


def _seed(source: str) -> str:
    return _PRELUDE + textwrap.dedent(source)

SEEDED_VIOLATIONS = {
    "TIM001": (
        _seed("""
        def leak(engine, cb):
            t = Timer(engine, cb, name="x", actor="r", tag="reuse")
            t.start(DELAY)
        """),
        "repro.sim.fixture",
    ),
    "TIM002": (
        _seed("""
        def double(engine, cb):
            t = Timer(engine, cb, name="x", actor="r", tag="reuse")
            t.start(DELAY)
            t.start(DELAY)
            return t
        """),
        "repro.sim.fixture",
    ),
    "TIM003": (
        _seed("""
        def rearm(engine, cb):
            t = Timer(engine, cb, name="x", actor="r", tag="reuse")
            t.start(DELAY)
            t.cancel()
            t.start(DELAY)
            return t
        """),
        "repro.sim.fixture",
    ),
    "TIM004": (
        _seed("""
        class Owner:
            def flush(self):
                self.entry.penalty = 0.0

            def arm(self, engine):
                t = Timer(engine, self.flush, name="x", actor="r", tag="reuse")
                t.start(DELAY)
                return t
        """),
        "repro.sim.fixture",
    ),
    "TIM005": (
        """
        def arm(timer):
            timer.reschedule(30.0)
        """,
        "repro.sim.fixture",
    ),
    "TIM006": (
        """
        def flush_now(timer):
            timer._fire()
        """,
        "repro.sim.fixture",
    ),
    "TIM007": (
        """
        from repro.sim.timers import Timer

        def build(engine, cb):
            return Timer(engine, cb, name="x")
        """,
        "repro.sim.fixture",
    ),
    "TIM008": (
        """
        def arm(timer, deadline, engine):
            timer.reschedule(deadline - engine.now)
        """,
        "repro.sim.fixture",
    ),
    "TIM009": (
        """
        def check(timer):
            return timer.state == "pending"
        """,
        "repro.sim.fixture",
    ),
    "TIM010": (
        """
        class Eager:
            def __init__(self, engine, cb, delay):
                engine.schedule(delay, cb)
        """,
        "repro.sim.fixture",
    ),
}


@pytest.mark.parametrize("rule_id", sorted(SEEDED_VIOLATIONS))
def test_seeded_violation_is_flagged_statically(rule_id):
    source, module = SEEDED_VIOLATIONS[rule_id]
    report = lint_source(
        textwrap.dedent(source), path="seeded.py", module=module
    )
    assert not report.parse_errors
    assert rule_id in {f.rule_id for f in report.findings}, (
        f"timerlint did not flag the seeded {rule_id} violation"
    )


def test_seeded_fixtures_are_clean_without_the_seeded_rule():
    """Each fixture seeds *its* violation, not an unrelated TIM soup."""
    for rule_id, (source, module) in SEEDED_VIOLATIONS.items():
        report = lint_source(
            textwrap.dedent(source), path="seeded.py", module=module
        )
        other_tim = {
            f.rule_id
            for f in report.findings
            if f.rule_id.startswith("TIM") and f.rule_id != rule_id
        }
        assert not other_tim, f"{rule_id} fixture also fires {other_tim}"


# ----------------------------------------------------------------------
# dynamic side: the runtime timer audit trips on the same hazards
# ----------------------------------------------------------------------


def audited_engine():
    engine = Engine()
    return engine, engine.enable_timer_audit()


def test_static_leak_fixture_fails_the_audit():
    """TIM001's fixture, executed: the armed handle is abandoned (the
    runtime shape is its event dying behind the timer's back) and the
    audit reports exactly one leak."""
    engine, audit = audited_engine()
    timer = Timer(engine, lambda: None, name="x", actor="r", tag="reuse")
    timer.start(5.0)
    timer._event.cancel()  # the dropped handle can never fire or be disarmed
    engine.run()
    violations = audit.verify()
    assert [v.kind for v in violations] == ["leak"]
    assert violations[0].timer == "x"


def test_static_double_arm_fixture_fails_the_audit():
    """TIM002's fixture, executed: Timer.start() raises on the guarded
    path, and forcing past the guard (the hazard the static rule warns
    about) is a double-arm to the audit."""
    from repro.errors import TimerError

    engine, audit = audited_engine()
    timer = Timer(engine, lambda: None, name="x", actor="r", tag="reuse")
    timer.start(5.0)
    with pytest.raises(TimerError):
        timer.start(5.0)
    timer._arm(5.0)  # the guard-bypassed double arm
    engine.run()
    assert "double-arm" in {v.kind for v in audit.verify()}


def test_static_manual_fire_fixture_fails_the_audit():
    """TIM006's fixture, executed: a hand-called ``_fire`` runs the
    callback outside the event boundary and strands the scheduled event,
    which the audit reports as an unmatched fire."""
    engine, audit = audited_engine()
    fired = []
    timer = Timer(engine, lambda: fired.append(engine.now), name="x",
                  actor="r", tag="reuse")
    timer.start(5.0)
    timer._fire()
    engine.run()
    assert fired == [0.0]  # flushed synchronously, not at the expiry
    assert "unmatched-fire" in {v.kind for v in audit.verify()}


def test_clean_scenario_passes_the_audit():
    """A full damped episode under the audit: heavy reuse/MRAI timer
    churn, zero lifecycle violations, nothing left armed after drain."""
    config = ScenarioConfig(
        topology=mesh_topology(3, 3), damping=CISCO_DEFAULTS, seed=11
    )
    scenario = Scenario(config)
    audit = scenario.engine.enable_timer_audit()
    scenario.warm_up()
    scenario.run(PulseSchedule.regular(1, 60.0))
    assert audit.verify() == []
    assert audit.pending_timers() == []
    assert audit.timers_seen > 0
    assert audit.transitions > audit.timers_seen


def test_audit_does_not_change_simulation_results():
    """The audit is passive: an audited run and a plain run of the same
    scenario produce identical message counts and convergence times."""
    def run_once(audited: bool):
        config = ScenarioConfig(
            topology=mesh_topology(3, 3), damping=CISCO_DEFAULTS, seed=11
        )
        scenario = Scenario(config)
        if audited:
            scenario.engine.enable_timer_audit()
        scenario.warm_up()
        result = scenario.run(PulseSchedule.regular(2, 60.0))
        return result.message_count, result.convergence_time

    assert run_once(False) == run_once(True)


def test_reset_damping_mid_flight_leaves_no_armed_orphans():
    """The in-PR fix for the latent reset_damping leak: replacing the
    manager now cancels its reuse timers first, so a mid-flight reset
    passes the audit instead of leaving armed timers firing into a
    discarded manager."""
    config = ScenarioConfig(
        topology=mesh_topology(3, 3), damping=CISCO_DEFAULTS, seed=11
    )
    scenario = Scenario(config)
    audit = scenario.engine.enable_timer_audit()
    scenario.warm_up()
    scenario.run(PulseSchedule.regular(2, 30.0))
    for _, router in sorted(scenario.routers.items()):
        router.reset_damping()
    # Pre-fix, the replaced managers' reuse timers stayed armed with no
    # owner; cancel_all_timers() in reset_damping disarms them, so the
    # audit sees a fully quiesced end state.
    scenario.engine.run_until_idle(scenario.engine.now + 10_000.0)
    assert audit.verify() == []
    assert audit.pending_timers() == []


def test_mrai_cancel_all_timers_quiesces_the_limiter():
    """MraiLimiter.cancel_all_timers() disarms every pending hold-off but
    keeps deferred prefixes, and the audit agrees nothing leaked."""
    from repro.bgp.mrai import MraiConfig, MraiLimiter
    from repro.sim.rng import RngRegistry

    engine, audit = audited_engine()
    limiter = MraiLimiter(
        engine,
        MraiConfig(base=30.0),
        "r1",
        RngRegistry(master_seed=3),
        lambda peer, prefixes: len(prefixes) > 0,
    )
    limiter.note_sent("p1")
    limiter.defer("p1", "10.0.0.0/8")
    assert limiter.has_pending()
    assert limiter.cancel_all_timers() == 1
    assert limiter.may_send_now("p1")
    assert limiter.pending_prefixes("p1") == {"10.0.0.0/8"}
    engine.run()
    assert audit.verify() == []
    assert audit.pending_timers() == []

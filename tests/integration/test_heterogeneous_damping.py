"""Integration tests for heterogeneous damping parameters (Section 7).

The paper: "assume router Y has set more aggressive damping parameters
than router X ... X will reuse its route to originAS earlier than Y.
When X reuses its route and sends it to Y, this announcement will
re-charge Y's reuse timer on link [X, Y]." We rebuild that exact
two-router chain and watch the recharge happen.
"""

from __future__ import annotations

import pytest

from repro.bgp.mrai import MraiConfig
from repro.bgp.origin import OriginRouter
from repro.bgp.router import BgpRouter, RouterConfig
from repro.core.params import CISCO_DEFAULTS, DampingParams
from repro.net.link import LinkConfig
from repro.net.network import Network
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.topology.mesh import mesh_topology
from repro.workload.scenarios import Scenario, ScenarioConfig

#: More aggressive than Cisco: the same flaps suppress longer at Y.
AGGRESSIVE = DampingParams(
    withdrawal_penalty=1000.0,
    reannouncement_penalty=1000.0,
    attribute_change_penalty=500.0,
    cutoff_threshold=2000.0,
    reuse_threshold=400.0,  # lower reuse threshold -> longer suppression
    half_life=15 * 60.0,
    max_hold_down=60 * 60.0,
)


def build_chain(rcn: bool = False):
    """origin -- X (cisco) -- Y (aggressive)."""
    engine = Engine()
    rng = RngRegistry(21)
    network = Network(engine, rng)
    x = BgpRouter(
        "X", engine, rng,
        config=RouterConfig(
            damping=CISCO_DEFAULTS, rcn_enabled=rcn, mrai=MraiConfig(base=0.0)
        ),
    )
    y = BgpRouter(
        "Y", engine, rng,
        config=RouterConfig(
            damping=AGGRESSIVE, rcn_enabled=rcn, mrai=MraiConfig(base=0.0)
        ),
    )
    origin = OriginRouter("originAS", engine, rng, prefix="p0", isp="X")
    for node in (x, y, origin):
        network.add_node(node)
    link = LinkConfig(base_delay=0.001, jitter=0.0)
    network.add_link("originAS", "X", link)
    network.add_link("X", "Y", link)
    origin.bring_up()
    engine.run()
    x.reset_damping()
    y.reset_damping()
    return engine, origin, x, y


def flap(engine, origin, times: int) -> None:
    for _ in range(times):
        origin.take_down()
        engine.run(until=engine.now + 60.0)
        origin.bring_up()
        engine.run(until=engine.now + 60.0)


def test_aggressive_router_suppresses_longer():
    engine, origin, x, y = build_chain()
    flap(engine, origin, 3)
    assert x.damping.is_suppressed("originAS", "p0")
    assert y.damping.is_suppressed("X", "p0")
    x_expiry = x.damping.reuse_timer_expiry("originAS", "p0")
    y_expiry = y.damping.reuse_timer_expiry("X", "p0")
    # Same update train, lower reuse threshold at Y: Y's timer outlasts X's.
    assert y_expiry > x_expiry


def test_x_reuse_recharges_y_without_rcn():
    """The paper's exact scenario: X's reuse announcement re-charges Y."""
    engine, origin, x, y = build_chain(rcn=False)
    flap(engine, origin, 3)
    y_record = y.damping.suppressions[-1]
    recharges_before = len(y_record.recharges)
    y_expiry_before = y.damping.reuse_timer_expiry("X", "p0")
    engine.run()  # drain: X reuses first, announces to Y
    assert len(y_record.recharges) > recharges_before
    # Y's actual reuse happened later than its pre-recharge schedule.
    assert y_record.ended > y_expiry_before


def test_rcn_filters_repeated_cause_in_diversity_scenario():
    """On a redundancy-free chain every flap reaches Y exactly once, so
    RCN and plain damping charge identically *during* the episode — the
    filter's value appears when a cause is replayed. Re-deliver X's
    reuse announcement (same root cause): plain damping would charge the
    re-announcement penalty again; RCN must not."""
    from repro.bgp.messages import UpdateMessage

    engine, origin, x, y = build_chain(rcn=True)
    flap(engine, origin, 3)
    engine.run()  # drain: X reuses, Y eventually reuses too
    entry = y.rib_in("X").entry("p0")
    assert entry is not None and entry.route is not None
    cause = entry.root_cause
    assert cause is not None
    penalty_before = y.damping.penalty_value("X", "p0")
    # Replay a *different-looking* announcement with the same root cause
    # (as a path-exploration echo would look).
    y.process_update(
        "X",
        UpdateMessage(
            prefix="p0", as_path=("X", "detour", "originAS"), root_cause=cause
        ),
    )
    assert y.damping.penalty_value("X", "p0") == pytest.approx(
        penalty_before, rel=1e-6
    )
    # The same replay without RCN charges the attribute-change penalty.
    engine2, origin2, x2, y2 = build_chain(rcn=False)
    flap(engine2, origin2, 3)
    engine2.run()
    entry2 = y2.rib_in("X").entry("p0")
    before2 = y2.damping.penalty_value("X", "p0")
    y2.process_update(
        "X",
        UpdateMessage(
            prefix="p0", as_path=("X", "detour", "originAS"),
            root_cause=entry2.root_cause,
        ),
    )
    assert y2.damping.penalty_value("X", "p0") == pytest.approx(
        before2 + AGGRESSIVE.attribute_change_penalty, rel=1e-3
    )


def test_scenario_config_damping_overrides():
    topology = mesh_topology(3, 3)
    overrides = {topology.nodes[0]: AGGRESSIVE}
    config = ScenarioConfig(
        topology=topology,
        damping=CISCO_DEFAULTS,
        damping_overrides=overrides,
        seed=1,
    )
    scenario = Scenario(config)
    assert scenario.routers[topology.nodes[0]].config.damping is AGGRESSIVE
    assert scenario.routers[topology.nodes[1]].config.damping is CISCO_DEFAULTS


def test_damping_overrides_validation():
    from repro.errors import ConfigurationError

    topology = mesh_topology(3, 3)
    with pytest.raises(ConfigurationError):
        ScenarioConfig(
            topology=topology,
            damping=CISCO_DEFAULTS,
            damping_overrides={"ghost": AGGRESSIVE},
        )
    with pytest.raises(ConfigurationError):
        ScenarioConfig(
            topology=topology,
            damping=None,
            damping_overrides={topology.nodes[0]: AGGRESSIVE},
        )

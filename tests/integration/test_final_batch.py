"""Final integration batch: vendor end-to-end behaviour, CLI 'run all'
expansion, and cross-cutting edges."""

from __future__ import annotations

import pytest

from repro.core.params import JUNIPER_DEFAULTS
from repro.topology.mesh import mesh_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig


class TestJuniperEndToEnd:
    """Juniper defaults charge re-announcements (+1000) and cut off at
    3000: the ISP suppresses the flapping route on the second pulse."""

    def run_pulses(self, pulses: int) -> tuple:
        config = ScenarioConfig(
            topology=mesh_topology(5, 5), damping=JUNIPER_DEFAULTS, seed=6
        )
        scenario = Scenario(config)
        scenario.warm_up()
        scenario.run(PulseSchedule.regular(pulses, 60.0))
        isp_router = scenario.routers[scenario.isp]
        suppressed_origin = any(
            record.peer == "originAS" for record in isp_router.damping.suppressions
        )
        return scenario, suppressed_origin

    def test_one_pulse_no_isp_suppression(self):
        _, suppressed = self.run_pulses(1)
        assert not suppressed

    def test_two_pulses_trigger_isp_suppression(self):
        _, suppressed = self.run_pulses(2)
        assert suppressed

    def test_juniper_network_still_converges(self):
        scenario, _ = self.run_pulses(2)
        assert scenario.engine.pending_count == 0
        for router in scenario.routers.values():
            assert router.has_route(scenario.config.prefix)


class TestCliRunAll:
    def test_all_expands_to_registry(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.experiments.table1 import table1_experiment

        monkeypatch.setattr(cli, "list_experiments", lambda: ["T1"])
        assert cli.main(["run", "all"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out

    def test_all_is_case_insensitive(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "list_experiments", lambda: ["T1"])
        assert cli.main(["run", "ALL"]) == 0
        assert "T1" in capsys.readouterr().out


class TestCrossCuttingEdges:
    def test_zero_jitter_links_still_converge(self):
        from repro.core.params import CISCO_DEFAULTS
        from repro.net.link import LinkConfig

        config = ScenarioConfig(
            topology=mesh_topology(4, 4),
            damping=CISCO_DEFAULTS,
            link=LinkConfig(base_delay=0.01, jitter=0.0),
            seed=2,
        )
        scenario = Scenario(config)
        result = scenario.run(PulseSchedule.regular(1, 60.0))
        assert result.message_count > 0
        assert scenario.engine.pending_count == 0

    def test_mrai_disabled_network_converges(self):
        from repro.bgp.mrai import MraiConfig
        from repro.core.params import CISCO_DEFAULTS

        config = ScenarioConfig(
            topology=mesh_topology(4, 4),
            damping=CISCO_DEFAULTS,
            mrai=MraiConfig(base=0.0),
            seed=2,
        )
        scenario = Scenario(config)
        result = scenario.run(PulseSchedule.regular(1, 60.0))
        assert scenario.engine.pending_count == 0
        # Without MRAI pacing, exploration is compressed but the damping
        # dynamics still play out.
        assert result.message_count > 0

    def test_back_to_back_pulses_with_tiny_interval(self):
        from repro.core.params import CISCO_DEFAULTS

        config = ScenarioConfig(
            topology=mesh_topology(4, 4), damping=CISCO_DEFAULTS, seed=2
        )
        scenario = Scenario(config)
        result = scenario.run(PulseSchedule.regular(5, 2.0))
        assert scenario.engine.pending_count == 0
        assert result.convergence_time > 0

    def test_long_quiet_schedule_decays_penalties(self):
        """Pulses spaced 20 minutes apart never suppress (geometric sum
        stays below the cutoff) — end-to-end confirmation of the
        intended model's prediction."""
        from repro.core.params import CISCO_DEFAULTS

        config = ScenarioConfig(
            topology=mesh_topology(3, 3), damping=CISCO_DEFAULTS, seed=2
        )
        scenario = Scenario(config)
        scenario.warm_up()
        scenario.run(PulseSchedule.regular(4, 600.0))
        isp_router = scenario.routers[scenario.isp]
        assert not any(
            record.peer == "originAS" for record in isp_router.damping.suppressions
        )

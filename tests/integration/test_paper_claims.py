"""Integration tests asserting the paper's qualitative claims end-to-end.

These run the full stack on the paper's 100-node mesh (each episode takes
well under a second) and check the phenomena the paper reports: false
suppression after one pulse, suppression onset at the ISP on the third
pulse, secondary charging and its elimination by RCN, the muffling effect
past the critical pulse count, and the message-count trends.
"""

from __future__ import annotations

import pytest

from repro.core.intended import IntendedBehaviorModel
from repro.core.params import CISCO_DEFAULTS
from repro.core.states import DampingPhase
from repro.experiments.base import mesh100_config, run_point
from repro.experiments.fig10 import classify_run
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario

SEED = 42


@pytest.fixture(scope="module")
def one_pulse_damping():
    return run_point(mesh100_config(seed=SEED), pulses=1)


@pytest.fixture(scope="module")
def five_pulse_damping():
    return run_point(mesh100_config(seed=SEED), pulses=5)


@pytest.fixture(scope="module")
def no_damping_results():
    config = mesh100_config(damping=None, seed=SEED)
    return {n: run_point(config, pulses=n) for n in (1, 3, 5)}


def test_single_pulse_triggers_false_suppression(one_pulse_damping):
    """Paper 5.3: one pulse triggers suppression at hundreds of links even
    though the ISP itself never suppresses."""
    assert one_pulse_damping.summary.total_suppressions > 50
    assert one_pulse_damping.summary.peak_damped_links > 50


def test_single_pulse_convergence_far_exceeds_intended(one_pulse_damping):
    """Paper Fig 8: for n=1 the measured convergence is tens of minutes,
    the intended behaviour is ~t_up (seconds)."""
    assert one_pulse_damping.convergence_time > 1000.0
    assert one_pulse_damping.warmup_convergence < 300.0


def test_single_pulse_amplified_to_hundreds_of_updates(one_pulse_damping):
    """Paper 5.3: 'this single pulse is amplified to several hundred
    updates in the network'."""
    assert one_pulse_damping.message_count > 300


def test_secondary_charging_present_without_rcn(one_pulse_damping):
    """Reuse timers get postponed by reuse-triggered update waves."""
    assert one_pulse_damping.summary.secondary_charges > 0


def test_isp_suppression_starts_at_third_pulse():
    """Paper 5.3: 'the third pulse will trigger suppression on the
    [originAS, ispAS] link' (Cisco defaults, 60 s interval)."""
    for pulses, expect_suppressed in ((2, False), (3, True)):
        scenario = Scenario(mesh100_config(seed=SEED))
        scenario.warm_up()
        scenario.run(PulseSchedule.regular(pulses, 60.0))
        isp_router = scenario.routers[scenario.isp]
        suppressed_origin_link = any(
            record.peer == "originAS"
            for record in isp_router.damping.suppressions
        )
        assert suppressed_origin_link is expect_suppressed, (
            f"pulses={pulses}: expected ISP suppression {expect_suppressed}"
        )


def test_muffling_brings_convergence_to_intended(five_pulse_damping):
    """Paper Fig 8: past the critical point (Nh=5 in this setup) the
    measured convergence matches the Section 3 calculation."""
    model = IntendedBehaviorModel(
        CISCO_DEFAULTS, flap_interval=60.0, tup=five_pulse_damping.warmup_convergence
    )
    intended = model.predict(5).convergence_time
    assert five_pulse_damping.convergence_time == pytest.approx(intended, rel=0.05)


def test_beyond_critical_point_reuse_is_silent(five_pulse_damping):
    """Paper 5.3 (n=5): muffling makes remote reuse timers expire silently;
    the only noisy expiry is the ISP's own RTh."""
    summary = five_pulse_damping.summary
    assert summary.silent_reuses > 100
    assert summary.noisy_reuses <= 3


def test_small_pulse_counts_deviate_from_intended():
    """Paper Fig 8: below the critical point the measured convergence is a
    large multiple of the intended value."""
    result = run_point(mesh100_config(seed=SEED), pulses=1)
    model = IntendedBehaviorModel(
        CISCO_DEFAULTS, flap_interval=60.0, tup=result.warmup_convergence
    )
    intended = model.predict(1).convergence_time
    assert result.convergence_time > 5 * intended


def test_no_damping_message_count_grows_linearly(no_damping_results):
    """Paper Fig 9: without damping the message count grows ~linearly."""
    m1 = no_damping_results[1].message_count
    m3 = no_damping_results[3].message_count
    m5 = no_damping_results[5].message_count
    assert m1 < m3 < m5
    assert m3 == pytest.approx(3 * m1, rel=0.35)
    assert m5 == pytest.approx(5 * m1, rel=0.35)


def test_no_damping_convergence_short(no_damping_results):
    for result in no_damping_results.values():
        assert result.convergence_time < 300.0
        assert result.summary.total_suppressions == 0


def test_damping_caps_message_count():
    """Paper Fig 9: with damping the message count flattens once the ISP
    suppresses the flapping route."""
    m5 = run_point(mesh100_config(seed=SEED), pulses=5).message_count
    m8 = run_point(mesh100_config(seed=SEED), pulses=8).message_count
    assert m8 < m5 * 1.15


def test_rcn_matches_intended_for_small_n():
    """Paper Fig 13: with RCN the convergence matches the calculation at
    every pulse count, including below the critical point."""
    # n=1: no suppression is intended — convergence is plain BGP
    # convergence (seconds-to-minutes), no damping delay.
    result1 = run_point(mesh100_config(rcn=True, seed=SEED), pulses=1)
    assert result1.summary.total_suppressions == 0
    assert result1.convergence_time < 300.0
    # n=3: suppression is intended — convergence tracks r + t_up closely.
    result3 = run_point(mesh100_config(rcn=True, seed=SEED), pulses=3)
    model = IntendedBehaviorModel(
        CISCO_DEFAULTS, flap_interval=60.0, tup=result3.warmup_convergence
    )
    intended = model.predict(3).convergence_time
    assert result3.convergence_time == pytest.approx(intended, rel=0.10)


def test_rcn_eliminates_secondary_charging():
    result = run_point(mesh100_config(rcn=True, seed=SEED), pulses=1)
    assert result.summary.secondary_charges == 0
    assert result.summary.total_suppressions == 0


def test_rcn_produces_more_messages_at_large_n():
    """Paper Fig 14: RCN damping sends somewhat more messages than plain
    damping at large n (no early false suppression to cut exploration)."""
    plain = run_point(mesh100_config(seed=SEED), pulses=8).message_count
    rcn = run_point(mesh100_config(rcn=True, seed=SEED), pulses=8).message_count
    assert rcn > plain


def test_phase_classification_single_pulse(one_pulse_damping):
    """Paper Fig 10(a)/(d): charging, then suppression, then releasing."""
    phases = [interval.phase for interval in classify_run(one_pulse_damping)]
    assert phases[0] is DampingPhase.CHARGING
    assert DampingPhase.SUPPRESSION in phases
    assert DampingPhase.RELEASING in phases
    assert phases[-1] is DampingPhase.CONVERGED


def test_releasing_dominates_single_pulse_timeline(one_pulse_damping):
    """Paper 5.3: suppression + releasing dwarf the charging period."""
    from repro.core.states import phase_durations

    durations = phase_durations(classify_run(one_pulse_damping))
    post_charging = (
        durations[DampingPhase.SUPPRESSION] + durations[DampingPhase.RELEASING]
    )
    assert post_charging > 5 * durations[DampingPhase.CHARGING]

"""Integration tests for the internet-scale pipeline: generate → save →
ingest → episode, delivery coalescing's digest identity, and the
``rfd-repro topo`` subcommands end to end.

Graph sizes here are deliberately small (tens to low hundreds of
nodes): tier-1 exercises the machinery, the benchmarks exercise the
scale."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.scale import run_scale_episode
from repro.topology.io import load_topology, save_topology
from repro.topology.scale import powerlaw_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig
from repro.metrics.digest import run_digest


def _episode_digest(topology, coalesce: bool) -> str:
    config = ScenarioConfig(topology=topology, seed=0, coalesce_delivery=coalesce)
    scenario = Scenario(config)
    scenario.warm_up()
    result = scenario.run(PulseSchedule.regular(2))
    return run_digest(result.collector)


def test_coalesced_delivery_is_digest_identical():
    """Batched link delivery must not change observable metrics: the
    digest-identity contract that lets scale runs default to coalescing."""
    topology = powerlaw_topology(60, seed=3)
    assert _episode_digest(topology, coalesce=True) == _episode_digest(
        topology, coalesce=False
    )


def test_scale_episode_is_deterministic_and_measured():
    first = run_scale_episode(nodes=80, watchdog=True)
    second = run_scale_episode(nodes=80, watchdog=True)
    assert first.digest == second.digest
    assert first.events == second.events
    assert first.events > 0
    assert first.peak_rss_bytes > 0
    assert first.nodes == 80
    assert first.coalesce_delivery is True


def test_episode_digest_survives_save_load_round_trip(tmp_path):
    generated = powerlaw_topology(60, seed=3, with_relationships=True)
    path = tmp_path / "g.json"
    save_topology(generated, path)
    loaded = load_topology(path)
    direct = run_scale_episode(topology=generated)
    via_file = run_scale_episode(topology=loaded)
    assert direct.digest == via_file.digest


def test_topo_gen_ingest_stats_cli_round_trip(tmp_path, capsys):
    topo_json = tmp_path / "gen.json"
    caida = tmp_path / "gen.txt"
    code = main(
        [
            "topo", "gen",
            "--nodes", "80",
            "--seed", "3",
            "--relationships",
            "--out", str(topo_json),
            "--caida-out", str(caida),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "powerlaw-80" in out

    ingested = tmp_path / "ingested.json"
    assert main(["topo", "ingest", str(caida), "--out", str(ingested)]) == 0
    capsys.readouterr()

    # Stats agree between the generated JSON and the CAIDA round-trip.
    assert main(["topo", "stats", str(topo_json), "--json"]) == 0
    from_json = json.loads(capsys.readouterr().out)
    assert main(["topo", "stats", str(ingested), "--json"]) == 0
    from_caida = json.loads(capsys.readouterr().out)
    assert from_json["nodes"] == from_caida["nodes"] == 80
    assert from_json["edges"] == from_caida["edges"]
    assert from_json["provider_edges"] == from_caida["provider_edges"]


def test_topo_gen_caida_out_requires_relationships(tmp_path, capsys):
    code = main(
        ["topo", "gen", "--nodes", "50", "--caida-out", str(tmp_path / "x.txt")]
    )
    assert code == 2
    assert "relationships" in capsys.readouterr().err.lower()


def test_topo_ingest_bad_file_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.txt"
    bad.write_text("1|2|-1\nmangled\n", encoding="utf-8")
    assert main(["topo", "ingest", str(bad)]) == 2
    assert "mangled" in capsys.readouterr().err


def test_topo_bench_digest_verification(tmp_path, capsys):
    mem = tmp_path / "mem.json"
    digests = tmp_path / "digests.json"
    base = [
        "topo", "bench",
        "--nodes", "60",
        "--pulses", "1",
    ]
    assert main(base + ["--json", str(mem), "--write-digests", str(digests)]) == 0
    capsys.readouterr()
    payload = json.loads(mem.read_text(encoding="utf-8"))
    assert payload["nodes"] == 60
    assert payload["peak_rss_bytes"] > 0
    assert len(payload["digest"]) == 64

    # Same invocation verifies against what it just recorded...
    assert main(base + ["--verify-digests", str(digests)]) == 0
    capsys.readouterr()
    # ...and a different workload fails verification (key miss).
    code = main(base[:-1] + ["2", "--verify-digests", str(digests)])
    assert code == 1
    assert "digest" in capsys.readouterr().err.lower()


def test_topo_bench_no_coalesce_matches_coalesced_digest(tmp_path, capsys):
    digests = tmp_path / "digests.json"
    args = ["topo", "bench", "--nodes", "60", "--pulses", "1"]
    assert main(args + ["--write-digests", str(digests)]) == 0
    capsys.readouterr()
    recorded = json.loads(digests.read_text(encoding="utf-8"))
    assert main(args + ["--no-coalesce", "--write-digests", str(digests)]) == 0
    capsys.readouterr()
    both = json.loads(digests.read_text(encoding="utf-8"))
    assert len(both) == 2  # coalesce0 and coalesce1 keys
    assert len(set(both.values())) == 1  # ...with identical digests

"""Seeded-violation cross-check: perflint vs. the runtime allocation oracle.

The same bracketing the timerlint oracle provides for the timer
lifecycle contract, applied to hot-path allocation: for every PERF rule
a small fixture seeds exactly the hazard the rule describes and the
static pass must flag it (and nothing else). On the dynamic side the
hazard is *executed* as an engine callback under
:class:`repro.sim.allocprobe.AllocationProbe` (the ``simulate
--audit-alloc`` probe) next to a fixed variant applying the rule's
recommended remedy; the probe must attribute strictly more retained
bytes per event to the hazard. tracemalloc measures live memory, so
every fixture pair retains its per-event artifacts — the hazard's cost
is the extra garbage it retains, the fix's saving is sharing or
slotting the same artifact.

Static analysis sees hazards a run never reaches; the probe sees costs
the AST cannot prove (object sizes, interning). Together they pin the
catalogue to physical reality.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.core.params import CISCO_DEFAULTS
from repro.lint import lint_source, make_config
from repro.sim.allocprobe import AllocationProbe
from repro.sim.engine import Engine
from repro.topology.mesh import mesh_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig

#: Nonexistent profile: the resolver treats every phase as hot, keeping
#: the static side independent of the committed benchmark profile.
NO_PROFILE = "/nonexistent/profile.json"

# ----------------------------------------------------------------------
# static side: one seeded violation per PERF rule
# ----------------------------------------------------------------------

SEEDED_VIOLATIONS = {
    "PERF001": (
        """
        def outer(items):
            return sorted(items, key=lambda item: item.penalty)
        """,
        "repro.sample.fixture",
    ),
    "PERF002": (
        """
        def classify(items):
            out = []
            for item in items:
                out.append({"peer": item})
            return out
        """,
        "repro.sample.fixture",
    ),
    "PERF003": (
        """
        class Sweep:
            def total(self, items):
                total = 0.0
                for item in items:
                    if item > self.params.cutoff:
                        total += self.params.cutoff
                return total
        """,
        "repro.sample.fixture",
    ),
    "PERF004": (
        """
        def fmt(peer):
            return f"peer {peer}"
        """,
        "repro.sample.fixture",
    ),
    "PERF005": (
        """
        DEFAULTS = {"suppress": 2000.0}

        def snapshot():
            return DEFAULTS.copy()
        """,
        "repro.sample.fixture",
    ),
    "PERF006": (
        """
        class Outcome:
            def __init__(self, value):
                self.value = value

        def record(value):
            return Outcome(value)
        """,
        "repro.sample.fixture",
    ),
    "PERF007": (
        """
        def push(out, item):
            out += [item]
            return out
        """,
        "repro.sample.fixture",
    ),
    "PERF008": (
        """
        def probe(table, key):
            return key in table.keys()
        """,
        "repro.sample.fixture",
    ),
    "PERF009": (
        """
        def trace(log, peer):
            log.debug(f"peer {peer}")  # perflint: disable=PERF004
        """,
        "repro.sample.fixture",
    ),
    "PERF010": (
        """
        def is_edge(value):
            return value in (float("inf"), float("-inf"))
        """,
        "repro.sample.fixture",
    ),
}


def _perf_report(source: str, module: str):
    config = make_config(passes=("perf",), hot_profile=NO_PROFILE)
    return lint_source(
        textwrap.dedent(source), path="seeded.py", config=config, module=module
    )


@pytest.mark.parametrize("rule_id", sorted(SEEDED_VIOLATIONS))
def test_seeded_violation_is_flagged_statically(rule_id):
    source, module = SEEDED_VIOLATIONS[rule_id]
    report = _perf_report(source, module)
    assert not report.parse_errors
    assert rule_id in {f.rule_id for f in report.findings}, (
        f"perflint did not flag the seeded {rule_id} violation"
    )


def test_seeded_fixtures_are_clean_without_the_seeded_rule():
    """Each fixture seeds *its* hazard, not an unrelated PERF soup."""
    for rule_id, (source, module) in SEEDED_VIOLATIONS.items():
        report = _perf_report(source, module)
        other_perf = {
            f.rule_id
            for f in report.findings
            if f.rule_id.startswith("PERF") and f.rule_id != rule_id
        }
        assert not other_perf, f"{rule_id} fixture also fires {other_perf}"


# ----------------------------------------------------------------------
# dynamic side: the allocation probe prices the same hazards
# ----------------------------------------------------------------------

_EVENTS = 300
_TAG = "reuse"  # maps to the penalty_decay sub-phase
_PHASE = "penalty_decay"


def _measure(make_callback) -> int:
    """Net retained bytes after ``_EVENTS`` engine events of ``callback``.

    The callback factory receives the retention sink (a plain list); the
    engine brackets every event with the probe, so whatever the callback
    keeps alive is charged to the ``reuse``-tagged sub-phase.
    """
    engine = Engine()
    sink: list = []
    callback = make_callback(sink)
    for i in range(_EVENTS):
        engine.schedule(float(i + 1), callback, actor="r", tag=_TAG)
    probe = AllocationProbe()
    with probe:
        engine.set_phase_probe(probe)
        engine.run()
        engine.set_phase_probe(None)
        net = probe.net_bytes(_PHASE)
    assert probe.events_sampled == _EVENTS
    assert len(sink) == _EVENTS
    return net


class _Params:
    """Unslotted host for the PERF003 bound-method chain."""

    def __init__(self):
        self.cutoff = 2000.0

    def decay(self):
        return self.cutoff


class _Slotted:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class _Unslotted:
    def __init__(self, value):
        self.value = value


class _RecordingLogger:
    """Stores messages like the stdlib logger stores LogRecords: the
    message object as passed, lazy args unformatted until emit."""

    def __init__(self, sink):
        self._sink = sink

    def debug(self, message, *args):
        self._sink.append((message, args))


def _shared_key(item):
    return item


_DEFAULTS = {"suppress": 2000.0, "reuse": 750.0, "half_life": 900.0}
_EDGE = (float("inf"), float("-inf"))
_TABLE = {f"10.{i}.0.0/16": i for i in range(64)}


def _make_materialized_membership(sink):
    """PERF008 hazard: materialize the mapping for every membership test;
    retaining the throwaway list makes its per-event cost visible."""

    def callback():
        view = list(_TABLE)
        sink.append(("10.3.0.0/16" in view, view))

    return callback


def _make_eager_logging(sink):
    """PERF009 hazard: the message is formatted before the logger can
    decide; the stored record carries a unique pre-built string."""
    log = _RecordingLogger(sink)
    return lambda: log.debug(f"peer r{len(sink):>128} penalty {2000.0:>64}")


def _make_lazy_logging(sink):
    """PERF009 fix: the shared format literal travels unformatted."""
    log = _RecordingLogger(sink)
    return lambda: log.debug("peer r%s penalty %s", "r1", 2000.0)


#: rule id -> (hazard factory, fixed factory). Each factory takes the
#: retention sink and returns a zero-arg engine callback; the hazard
#: retains the per-event garbage the static rule warns about, the fixed
#: variant retains the remedy's shared/slotted artifact.
DYNAMIC_PAIRS = {
    "PERF001": (
        lambda sink: lambda: sink.append(lambda item: item),
        lambda sink: lambda: sink.append(_shared_key),
    ),
    "PERF002": (
        lambda sink: lambda: sink.append(
            {"peer": "r1", "prefix": "10.0.0.0/8", "penalty": 2000.0}
        ),
        lambda sink: lambda: sink.append(("r1", "10.0.0.0/8", 2000.0)),
    ),
    "PERF003": (
        # Re-evaluating `params.decay` binds a fresh method object each
        # time; the fix binds it to a local once.
        lambda sink, params=_Params(): lambda: sink.append(params.decay),
        lambda sink, bound=_Params().decay: lambda: sink.append(bound),
    ),
    "PERF004": (
        # len(sink) varies per event, so every formatted string is unique.
        lambda sink: lambda: sink.append(f"peer r{len(sink):>128} penalty 2000.0"),
        lambda sink: lambda: sink.append("peer r%s penalty 2000.0"),
    ),
    "PERF005": (
        lambda sink: lambda: sink.append(dict(_DEFAULTS)),
        lambda sink: lambda: sink.append(_DEFAULTS),
    ),
    "PERF006": (
        lambda sink: lambda: sink.append(_Unslotted(2000.0)),
        lambda sink: lambda: sink.append(_Slotted(2000.0)),
    ),
    "PERF007": (
        # The throwaway single-item list `+= [item]` allocates, priced by
        # retaining it; append retains only the item slot.
        lambda sink: lambda: sink.append(["10.0.0.0/8"]),
        lambda sink: lambda: sink.append("10.0.0.0/8"),
    ),
    "PERF008": (
        _make_materialized_membership,
        lambda sink: lambda: sink.append("10.3.0.0/16" in _TABLE),
    ),
    "PERF009": (
        _make_eager_logging,
        _make_lazy_logging,
    ),
    "PERF010": (
        lambda sink: lambda: sink.append((float("inf"), float("-inf"))),
        lambda sink: lambda: sink.append(_EDGE),
    ),
}


def test_dynamic_pairs_cover_the_whole_catalogue():
    assert sorted(DYNAMIC_PAIRS) == sorted(SEEDED_VIOLATIONS)


@pytest.mark.parametrize("rule_id", sorted(DYNAMIC_PAIRS))
def test_hazard_retains_more_bytes_than_fix(rule_id):
    hazard_factory, fixed_factory = DYNAMIC_PAIRS[rule_id]
    hazard_bytes = _measure(hazard_factory)
    fixed_bytes = _measure(fixed_factory)
    assert hazard_bytes > fixed_bytes, (
        f"{rule_id}: hazard retained {hazard_bytes}B, "
        f"fix retained {fixed_bytes}B — the probe should price the hazard"
    )
    # The gap is per-event, not a one-off: demand a real margin.
    assert hazard_bytes - fixed_bytes >= _EVENTS * 8


def test_probe_attributes_bytes_to_the_tagged_subphase():
    """Tag -> sub-phase attribution matches the profiler's map: reuse
    events land in penalty_decay, deliver in decision_process, untagged
    in timer_dispatch."""
    engine = Engine()
    sink: list = []
    engine.schedule(1.0, lambda: sink.append(dict(_DEFAULTS)), tag="reuse")
    engine.schedule(2.0, lambda: sink.append(dict(_DEFAULTS)), tag="deliver")
    engine.schedule(3.0, lambda: sink.append(dict(_DEFAULTS)))
    with AllocationProbe() as probe:
        engine.set_phase_probe(probe)
        engine.run()
        rows = probe.report()
    phases = {row["phase"] for row in rows}
    assert phases == {"penalty_decay", "decision_process", "timer_dispatch"}
    for row in rows:
        assert row["events"] == 1
        assert row["net_bytes"] > 0


def test_probe_is_passive_for_simulation_results():
    """The allocation audit never changes what the simulation computes:
    an audited run and a plain run produce identical message counts and
    convergence times."""

    def run_once(audited: bool):
        config = ScenarioConfig(
            topology=mesh_topology(3, 3), damping=CISCO_DEFAULTS, seed=11
        )
        scenario = Scenario(config)
        probe = AllocationProbe()
        if audited:
            probe.start()
            scenario.engine.set_phase_probe(probe)
        scenario.warm_up()
        result = scenario.run(PulseSchedule.regular(2, 60.0))
        if audited:
            probe.stop()
            assert probe.events_sampled > 0
        return result.message_count, result.convergence_time

    assert run_once(False) == run_once(True)


def test_scenario_run_samples_protocol_subphases():
    """A damped episode under the probe reports the protocol sub-phases
    the hot-set resolver scopes severity by."""
    config = ScenarioConfig(
        topology=mesh_topology(3, 3), damping=CISCO_DEFAULTS, seed=7
    )
    scenario = Scenario(config)
    with AllocationProbe() as probe:
        scenario.engine.set_phase_probe(probe)
        scenario.warm_up()
        scenario.run(PulseSchedule.regular(2, 60.0))
    labels = {row["phase"] for row in probe.report()}
    assert "decision_process" in labels
    assert probe.events_sampled > 0
    assert "no events sampled" not in probe.describe()

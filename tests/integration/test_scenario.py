"""Integration tests for the scenario machinery (build / warm-up / run)."""

from __future__ import annotations

import pytest

from repro.core.params import CISCO_DEFAULTS
from repro.errors import ConfigurationError, SimulationError
from repro.topology.internet import internet_topology
from repro.topology.mesh import mesh_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import ORIGIN_NAME, Scenario, ScenarioConfig, run_episode


def test_warmup_gives_every_router_a_route(fast_config):
    scenario = Scenario(fast_config)
    tup = scenario.warm_up()
    assert tup > 0
    for router in scenario.routers.values():
        assert router.has_route(fast_config.prefix)


def test_warmup_resets_damping_state(fast_config):
    scenario = Scenario(fast_config)
    scenario.warm_up()
    for router in scenario.routers.values():
        assert router.suppressed_entry_count() == 0
        for peer in router.neighbors:
            assert router.damping.penalty_value(peer, fast_config.prefix) == 0.0


def test_warmup_twice_rejected(fast_config):
    scenario = Scenario(fast_config)
    scenario.warm_up()
    with pytest.raises(SimulationError):
        scenario.warm_up()


def test_run_twice_rejected(fast_config):
    scenario = Scenario(fast_config)
    scenario.warm_up()
    scenario.run(PulseSchedule.regular(1))
    with pytest.raises(SimulationError):
        scenario.run(PulseSchedule.regular(1))


def test_run_without_explicit_warmup_warms_up(fast_config):
    scenario = Scenario(fast_config)
    result = scenario.run(PulseSchedule.regular(1))
    assert result.warmup_convergence > 0


def test_origin_attached_to_isp(fast_config):
    scenario = Scenario(fast_config)
    assert scenario.network.has_link(ORIGIN_NAME, scenario.isp)
    assert scenario.origin.isp == scenario.isp
    assert scenario.isp in fast_config.topology.nodes


def test_explicit_isp_respected(small_mesh):
    isp = small_mesh.nodes[3]
    config = ScenarioConfig(topology=small_mesh, damping=CISCO_DEFAULTS, isp=isp, seed=1)
    scenario = Scenario(config)
    assert scenario.isp == isp


def test_unknown_isp_rejected(small_mesh):
    with pytest.raises(ConfigurationError):
        ScenarioConfig(topology=small_mesh, isp="nope")


def test_zero_pulse_run_is_quiet(fast_config):
    result = run_episode(fast_config, pulses=0)
    assert result.message_count == 0
    assert result.convergence_time == 0.0
    assert result.final_announcement_time is None


def test_single_pulse_metrics(fast_config):
    result = run_episode(fast_config, pulses=1)
    assert result.message_count > 0
    assert result.convergence_time > 0
    assert result.final_announcement_time is not None
    assert result.flap_times[-1] == result.final_announcement_time
    assert result.schedule.pulse_count == 1


def test_same_seed_reproduces_exactly(fast_config):
    a = run_episode(fast_config, pulses=2)
    b = run_episode(fast_config, pulses=2)
    assert a.convergence_time == b.convergence_time
    assert a.message_count == b.message_count
    assert a.summary == b.summary


def test_different_seed_differs(small_mesh):
    base = ScenarioConfig(topology=small_mesh, damping=CISCO_DEFAULTS, seed=1)
    other = ScenarioConfig(topology=small_mesh, damping=CISCO_DEFAULTS, seed=2)
    a = run_episode(base, pulses=1)
    b = run_episode(other, pulses=1)
    assert (a.convergence_time, a.message_count) != (b.convergence_time, b.message_count)


def test_no_damping_scenario(small_mesh):
    config = ScenarioConfig(topology=small_mesh, damping=None, seed=1)
    result = run_episode(config, pulses=2)
    assert result.summary.total_suppressions == 0
    assert result.convergence_time < 300.0


def test_rcn_and_selective_mutually_exclusive(small_mesh):
    with pytest.raises(ConfigurationError):
        ScenarioConfig(
            topology=small_mesh, damping=CISCO_DEFAULTS, rcn=True, selective=True
        )


def test_damping_fraction_validation(small_mesh):
    with pytest.raises(ConfigurationError):
        ScenarioConfig(topology=small_mesh, damping_fraction=1.5)


def test_no_valley_requires_relationships(small_mesh):
    with pytest.raises(ConfigurationError):
        ScenarioConfig(topology=small_mesh, use_no_valley=True)


def test_partial_deployment_isp_always_damps(small_mesh):
    config = ScenarioConfig(
        topology=small_mesh, damping=CISCO_DEFAULTS, damping_fraction=0.25, seed=3
    )
    scenario = Scenario(config)
    assert scenario.routers[scenario.isp].damping is not None
    damping_count = sum(
        1 for router in scenario.routers.values() if router.damping is not None
    )
    assert 0 < damping_count < len(scenario.routers)


def test_router_at_distance(fast_config):
    scenario = Scenario(fast_config)
    router = scenario.router_at_distance(2)
    assert fast_config.topology.hop_distance(scenario.isp, router.name) == 2
    # Requesting beyond the eccentricity falls back to the farthest ring.
    far = scenario.router_at_distance(99)
    assert far.name in fast_config.topology.nodes


def test_intended_model_uses_measured_tup(fast_config):
    scenario = Scenario(fast_config)
    scenario.warm_up()
    model = scenario.intended_model()
    assert model.tup == scenario.warmup_convergence
    assert model.params is CISCO_DEFAULTS


def test_intended_model_requires_damping(small_mesh):
    config = ScenarioConfig(topology=small_mesh, damping=None, seed=1)
    scenario = Scenario(config)
    scenario.warm_up()
    with pytest.raises(ConfigurationError):
        scenario.intended_model()


def test_no_valley_scenario_warms_up():
    """Valley-free reachability: every AS learns the origin's prefix."""
    topology = internet_topology(40, seed=5, with_relationships=True)
    config = ScenarioConfig(
        topology=topology, damping=CISCO_DEFAULTS, use_no_valley=True, seed=1
    )
    scenario = Scenario(config)
    scenario.warm_up()
    for router in scenario.routers.values():
        assert router.has_route(config.prefix)


def test_config_label():
    topology = mesh_topology(3, 3)
    config = ScenarioConfig(topology=topology, damping=CISCO_DEFAULTS, rcn=True)
    assert "rcn" in config.label()
    assert "damping" in config.label()
    no_damp = ScenarioConfig(topology=topology, damping=None)
    assert "no-damping" in no_damp.label()

"""Seeded-violation cross-check: semlint vs. the runtime oracle.

For every SEM rule, a small fixture seeds exactly the hazard the rule
describes and the static pass must flag it. Where the hazard is
dynamically reachable, the runtime side must trip too: the
converged-state invariant oracle
(:func:`repro.analysis.invariants.check_converged_invariants`) for the
RIB/suppression contracts, and the engine's own scheduling guards for
the timer contracts. Static and dynamic detection bracketing the same
contract is the point — neither alone is airtight.
"""

from __future__ import annotations

import textwrap

import pytest

from dataclasses import replace as dc_replace

from repro.analysis.invariants import check_converged_invariants
from repro.core.params import CISCO_DEFAULTS
from repro.errors import SimulationError
from repro.lint import lint_source
from repro.topology.mesh import mesh_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig

# ----------------------------------------------------------------------
# static side: one seeded violation per SEM rule
# ----------------------------------------------------------------------

SEEDED_VIOLATIONS = {
    "SEM001": (
        """
        def select_best(candidates, engine):
            return max(candidates), engine.now
        """,
        "repro.bgp.decision",
    ),
    "SEM002": (
        """
        import heapq

        def arm_reuse(queue, now, delay, cb):
            heapq.heappush(queue, (now + delay, cb))
        """,
        "repro.core.fixture",
    ),
    "SEM003": (
        """
        def should_suppress(entry):
            return entry.penalty > 3000.0
        """,
        "repro.core.fixture",
    ),
    "SEM004": (
        """
        def reuse_due(entry, now, delay):
            return entry.armed_at == now + delay
        """,
        "repro.bgp.fixture",
    ),
    "SEM005": (
        """
        class Router:
            def install(self, prefix, route):
                self.loc_rib.set_route(prefix, route)
        """,
        "repro.bgp.fixture",
    ),
    "SEM006": (
        """
        def is_fresh(rcn, last_seq):
            return rcn.seq != last_seq
        """,
        "repro.bgp.fixture",
    ),
    "SEM007": (
        """
        def force_release(entry):
            entry.suppressed = False
        """,
        "repro.bgp.router",
    ),
}


@pytest.mark.parametrize("rule_id", sorted(SEEDED_VIOLATIONS))
def test_seeded_violation_is_flagged_statically(rule_id):
    source, module = SEEDED_VIOLATIONS[rule_id]
    report = lint_source(
        textwrap.dedent(source), path="seeded.py", module=module
    )
    assert not report.parse_errors
    assert rule_id in {f.rule_id for f in report.findings}, (
        f"semlint did not flag the seeded {rule_id} violation"
    )


def test_seeded_fixtures_are_clean_without_the_seeded_rule():
    """Each fixture seeds *its* violation, not an unrelated SEM soup."""
    for rule_id, (source, module) in SEEDED_VIOLATIONS.items():
        report = lint_source(
            textwrap.dedent(source), path="seeded.py", module=module
        )
        other_sem = {
            f.rule_id
            for f in report.findings
            if f.rule_id.startswith("SEM") and f.rule_id != rule_id
        }
        # SEM005 necessarily rides along with SEM001's RIB-mutation seeds.
        other_sem.discard("SEM005")
        assert not other_sem, f"{rule_id} fixture also fires {other_sem}"


# ----------------------------------------------------------------------
# dynamic side: the runtime oracle trips where the hazard is reachable
# ----------------------------------------------------------------------


def drained_scenario() -> Scenario:
    """A small damped mesh, warmed up and run to a fully drained state."""
    config = ScenarioConfig(
        topology=mesh_topology(3, 3), damping=CISCO_DEFAULTS, seed=11
    )
    scenario = Scenario(config)
    scenario.warm_up()
    scenario.run(PulseSchedule.regular(1, 60.0))
    return scenario


@pytest.fixture(scope="module")
def healthy():
    return drained_scenario()


def test_clean_run_passes_the_oracle(healthy):
    report = check_converged_invariants(healthy)
    assert report.ok
    assert report.routers_checked == 9
    report.raise_on_violation()  # must be a no-op


def test_corrupted_loc_rib_trips_decision_consistency():
    """Dynamic face of SEM001/SEM005: a Loc-RIB that no pure decision
    process over the current candidates would produce."""
    scenario = drained_scenario()
    router = scenario.routers[sorted(scenario.routers)[0]]
    prefix = scenario.config.prefix
    best = router.best_route(prefix)
    assert best is not None
    # A doubled AS path is simultaneously loopy and not the decision
    # winner — exactly what an unobserved foreign mutation produces.
    router.loc_rib.set_route(prefix, dc_replace(best, as_path=best.as_path * 2))
    report = check_converged_invariants(scenario)
    invariants = {v.invariant for v in report.violations}
    assert "decision-consistency" in invariants
    assert "loop-freedom" in invariants
    with pytest.raises(SimulationError):
        report.raise_on_violation()


def test_silent_withdrawal_trips_reachability():
    """Dynamic face of SEM005: wiping a Loc-RIB entry without telling
    anyone leaves a silently unreachable router."""
    scenario = drained_scenario()
    router = scenario.routers[sorted(scenario.routers)[-1]]
    router.loc_rib.set_route(scenario.config.prefix, None)
    report = check_converged_invariants(scenario)
    assert {v.invariant for v in report.violations} == {"reachability"}
    assert report.violations[0].router == router.name


def test_foreign_suppression_write_trips_drain():
    """Dynamic face of SEM007: a .suppressed write outside DampingManager
    leaves a suppressed entry no reuse timer will ever release."""
    scenario = drained_scenario()
    router = next(
        r for _, r in sorted(scenario.routers.items()) if r.damping is not None
    )
    entry = router.damping._entry("rogue-peer", scenario.config.prefix)
    entry.suppressed = True
    assert router.suppressed_entry_count() == 1
    report = check_converged_invariants(scenario)
    assert {v.invariant for v in report.violations} == {"drain"}
    with pytest.raises(SimulationError):
        report.raise_on_violation()


def test_hand_rolled_past_expiry_rejected_by_engine(healthy):
    """Dynamic face of SEM002: expiry arithmetic done by hand (here, an
    already-elapsed absolute instant) is exactly what Engine.schedule_at
    refuses — the API the rule forces everyone through."""
    engine = healthy.engine
    assert engine.now > 0.0
    with pytest.raises(SimulationError):
        engine.schedule_at(engine.now - 10.0, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_run_point_invariant_toggle():
    """Satellite wiring: set_invariant_checking() makes every sweep point
    pay for an oracle pass (and a clean run passes it)."""
    from repro.experiments.base import (
        invariant_checking_enabled,
        run_point,
        set_invariant_checking,
    )

    config = ScenarioConfig(
        topology=mesh_topology(3, 3), damping=CISCO_DEFAULTS, seed=11
    )
    assert not invariant_checking_enabled()
    set_invariant_checking(True)
    try:
        assert invariant_checking_enabled()
        result = run_point(config, pulses=1)
        assert result.message_count > 0
    finally:
        set_invariant_checking(False)
    assert not invariant_checking_enabled()

"""Integration tests for the experiment drivers (reduced pulse grids keep
these fast; the full grids run in benchmarks/)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.ablations import (
    flap_interval_experiment,
    partial_deployment_experiment,
    selective_damping_experiment,
    vendor_params_experiment,
)
from repro.experiments.base import SweepSeries, mesh100_config, run_sweep
from repro.experiments.fig3 import fig3_experiment
from repro.experiments.fig7 import fig7_experiment
from repro.experiments.fig8_9 import (
    critical_pulse_count,
    fig8_experiment,
    fig9_experiment,
    run_fig8_9_sweeps,
)
from repro.experiments.fig10 import fig10_experiment
from repro.experiments.fig13_14 import (
    fig13_experiment,
    fig14_experiment,
    run_fig13_14_sweeps,
)
from repro.experiments.fig15 import fig15_experiment, run_fig15_sweeps
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.table1 import table1_experiment

REDUCED = [1, 3, 5]


@pytest.fixture(scope="module")
def fig8_sweeps():
    return run_fig8_9_sweeps(REDUCED, include_internet=False)


def test_table1_rows_match_paper():
    result = table1_experiment()
    values = {row[0]: (row[1], row[2]) for row in result.rows}
    assert values["Withdrawal Penalty (P_W)"] == (1000.0, 1000.0)
    assert values["Re-announcement Penalty (P_A)"] == (0.0, 1000.0)
    assert values["Cut-off Threshold (P_cut)"] == (2000.0, 3000.0)
    assert "T1" in result.render()


def test_fig3_penalty_curve_shape():
    result = fig3_experiment()
    samples = dict(result.data["samples"])
    assert samples[0.0] == pytest.approx(1000.0)  # first withdrawal
    assert max(samples.values()) > 2000.0  # crosses the cutoff
    assert samples[2640.0] < 750.0  # decayed below reuse by the end
    assert result.data["suppressed_at"] is not None
    assert result.data["reuse_at"] > result.data["suppressed_at"]


def test_fig7_secondary_charging_trace():
    result = fig7_experiment()
    assert result.data["recharges"], "expected reuse-timer recharges"
    record = result.data["record"]
    assert record.ended is not None
    # The entry was reused later than charging alone would predict.
    assert len(result.data["recharges"]) >= 1
    assert result.data["convergence_time"] > 1000.0
    assert "F7" in result.render()


def test_fig8_shape(fig8_sweeps):
    result = fig8_experiment(REDUCED, sweeps=fig8_sweeps, include_internet=False)
    data = result.data
    mesh = data["sweeps"]["full_damping_mesh"]
    calc = data["calculation"]
    # Below the critical point: measured >> calculated.
    assert mesh.point(1).convergence_time > 3 * max(calc[1], 1.0)
    # At/after the critical point: measured ~= calculated.
    assert mesh.point(5).convergence_time == pytest.approx(calc[5], rel=0.10)
    # No-damping convergence stays small everywhere.
    for point in data["sweeps"]["no_damping_mesh"].points:
        assert point.convergence_time < 300.0
    assert len(result.rows) == len(REDUCED)


def test_fig9_shape(fig8_sweeps):
    result = fig9_experiment(REDUCED, sweeps=fig8_sweeps, include_internet=False)
    no_damping = result.data["sweeps"]["no_damping_mesh"]
    damping = result.data["sweeps"]["full_damping_mesh"]
    assert no_damping.point(5).message_count > no_damping.point(1).message_count
    # Damping caps messages below no-damping at large n.
    assert damping.point(5).message_count < no_damping.point(5).message_count


def test_critical_pulse_count_is_five(fig8_sweeps):
    sweeps = dict(fig8_sweeps)
    assert critical_pulse_count(sweeps) == 5


def test_fig10_structure():
    result = fig10_experiment(pulse_counts=(1, 3))
    assert set(result.data) == {"n1", "n3"}
    n1 = result.data["n1"]
    assert sum(c for _, c in n1["update_series"]) == n1["result"].message_count
    peak = max(c for _, c in n1["damped_series"])
    assert peak == n1["result"].summary.peak_damped_links
    assert n1["phases"]


def test_fig13_rcn_tracks_calculation():
    sweeps = run_fig13_14_sweeps(REDUCED, include_internet=False)
    result = fig13_experiment(REDUCED, sweeps=sweeps, include_internet=False)
    rcn = result.data["sweeps"]["damping_rcn"]
    calc = result.data["calculation"]
    assert rcn.point(3).convergence_time == pytest.approx(calc[3], rel=0.10)
    assert rcn.point(5).convergence_time == pytest.approx(calc[5], rel=0.10)
    # n=1 with RCN: no suppression, fast convergence.
    assert rcn.point(1).convergence_time < 300.0

    result14 = fig14_experiment(REDUCED, sweeps=sweeps, include_internet=False)
    plain = result14.data["sweeps"]["full_damping_mesh"]
    rcn14 = result14.data["sweeps"]["damping_rcn"]
    assert rcn14.point(5).message_count > plain.point(5).message_count


def test_fig15_policy_reduces_suppression():
    sweeps = run_fig15_sweeps([1, 3])
    result = fig15_experiment([1, 3], sweeps=sweeps)
    with_policy = result.data["sweeps"]["with_policy"]
    no_policy = result.data["sweeps"]["no_policy"]
    for n in (1, 3):
        assert with_policy.point(n).suppressions < no_policy.point(n).suppressions
        assert with_policy.point(n).message_count < no_policy.point(n).message_count


def test_ablation_flap_interval():
    result = flap_interval_experiment(intervals=(60.0, 240.0), pulse_counts=(3,))
    assert len(result.rows) == 2
    by_interval = {row[0]: row for row in result.rows}
    # Longer intervals decay the penalty more between flaps: the intended
    # (ISP-side) convergence delay at the same pulse count shrinks.
    assert by_interval[240.0][5] < by_interval[60.0][5]


def test_ablation_partial_deployment():
    result = partial_deployment_experiment(fractions=(0.25, 1.0), pulse_counts=(1,))
    by_fraction = {row[0]: row for row in result.rows}
    assert by_fraction["25%"][4] < by_fraction["100%"][4]  # fewer suppressions


def test_ablation_vendor_params():
    result = vendor_params_experiment(pulse_counts=(1, 3))
    vendors = {row[0] for row in result.rows}
    assert vendors == {"cisco", "juniper"}


def test_ablation_selective_damping():
    result = selective_damping_experiment(pulse_counts=(1,))
    row = result.rows[0]
    plain_sec, selective_sec, rcn_sec = row[4], row[5], row[6]
    # RCN eliminates secondary charging; selective does not.
    assert rcn_sec == 0
    assert selective_sec > 0
    assert plain_sec > 0


def test_registry_contains_all_artefacts():
    ids = list_experiments()
    for required in ("T1", "F3", "F7", "F8", "F9", "F10", "F13", "F14", "F15"):
        assert required in ids
    assert get_experiment("f8") is EXPERIMENTS["F8"]
    with pytest.raises(ExperimentError):
        get_experiment("F99")


def test_sweep_series_helpers():
    series = run_sweep("label", mesh100_config(damping=None, seed=1), [0, 1])
    assert series.label == "label"
    assert [p for p, _ in series.convergence()] == [0, 1]
    assert [p for p, _ in series.messages()] == [0, 1]
    with pytest.raises(ExperimentError):
        series.point(99)
    assert isinstance(series, SweepSeries)

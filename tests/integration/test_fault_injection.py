"""Integration tests for the fault-injection subsystem.

Covers the full loop: declarative plans compiled onto a scenario's
engine, router crash + restart with and without graceful restart, drop
accounting on downed/lossy links, damping-state survival across
failures, causal attribution of fault-induced charges, and the
determinism contract (same seed + same plan = same digests, whatever
``--jobs`` is).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.causality import analyze_trace
from repro.bgp.graceful_restart import GracefulRestartConfig
from repro.bgp.messages import UpdateMessage
from repro.bgp.mrai import MraiConfig
from repro.bgp.origin import OriginRouter
from repro.bgp.router import BgpRouter, RouterConfig
from repro.core.params import CISCO_DEFAULTS
from repro.experiments.gr_faults import gr_faults_experiment
from repro.experiments.parallel import execute_sweep
from repro.faults import (
    FaultPlan,
    FlapStorm,
    LinkFault,
    LinkImpairment,
    RouterCrash,
    SessionReset,
)
from repro.net.link import LinkConfig
from repro.net.network import Network
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.topology.mesh import mesh_topology
from repro.trace.tracer import MemorySink, Tracer
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import Scenario, ScenarioConfig


def _mesh_config(**overrides) -> ScenarioConfig:
    """4x4 mesh with a pinned ISP and instant MRAI, so crash windows are
    easy to reason about (routes propagate within link delay)."""
    topology = mesh_topology(4, 4)
    base = ScenarioConfig(
        topology=topology,
        damping=CISCO_DEFAULTS,
        seed=7,
        isp=topology.nodes[0],
        mrai=MraiConfig(base=0.0),
        link=LinkConfig(base_delay=0.01, jitter=0.02),
    )
    return replace(base, **overrides)


def _victim(config: ScenarioConfig) -> str:
    return config.topology.neighbors(config.isp)[0]


def _crash_plan(victim: str) -> FaultPlan:
    # The crash lifecycle tests run with pulses=0: the network holds its
    # warm converged routes, so the crash lands on live state (without
    # MRAI, a single origin flap's path-exploration wave suppresses the
    # prefix mesh-wide and a crash would have nothing to withdraw).
    return FaultPlan(
        name="crash",
        crashes=(RouterCrash(router=victim, at=45.0, down_for=30.0),),
    )


def _run(config: ScenarioConfig, pulses: int = 2):
    scenario = Scenario(config)
    scenario.warm_up()
    tracer = Tracer(MemorySink())
    result = scenario.run(PulseSchedule.regular(pulses, 60.0), tracer=tracer)
    tracer.close()
    return scenario, result, tracer


# ----------------------------------------------------------------------
# crash + restart lifecycle
# ----------------------------------------------------------------------


def test_hard_crash_charges_and_network_recovers():
    config = _mesh_config(charge_on_session_reset=True)
    victim = _victim(config)
    config = replace(config, faults=_crash_plan(victim))
    scenario, result, tracer = _run(config, pulses=0)

    assert scenario.fault_injector is not None
    assert scenario.fault_injector.actions_fired == 2
    assert [a for _, a, _ in scenario.fault_injector.fired] == ["crash", "restart"]
    stats = scenario.routers[victim].stats
    assert stats.crashes == 1
    assert stats.restarts == 1
    # The crash is visible in exact charge attribution.
    report = analyze_trace(tracer.records)
    assert report.charges_by_class["fault-induced"] > 0
    # The episode still drains and every router re-converges.
    assert scenario.engine.pending_count == 0
    for router in scenario.routers.values():
        assert router.has_route(config.prefix)


def test_graceful_restart_suppresses_fault_induced_charges():
    base = _mesh_config(charge_on_session_reset=True)
    victim = _victim(base)
    hard = replace(base, faults=_crash_plan(victim))
    graceful = replace(
        hard, graceful_restart=GracefulRestartConfig(restart_time=120.0)
    )

    _, _, hard_trace = _run(hard, pulses=0)
    scenario, _, gr_trace = _run(graceful, pulses=0)

    hard_report = analyze_trace(hard_trace.records)
    gr_report = analyze_trace(gr_trace.records)
    assert hard_report.charges_by_class["fault-induced"] > 0
    # With MRAI disabled a little restart re-sync churn still charges
    # (each hop reselects as ghost routes collapse), but retention must
    # beat the hard reset's full withdrawal wave.
    assert (
        gr_report.charges_by_class["fault-induced"]
        < hard_report.charges_by_class["fault-induced"]
    )
    # The restarted router came back and re-announced in time: no helper
    # flushed stale routes at expiry.
    for router in scenario.routers.values():
        assert router.gr_helper.expiry_flushes == 0
    for router in scenario.routers.values():
        assert router.has_route(base.prefix)


def test_crash_without_restart_leaves_router_down():
    config = _mesh_config()
    victim = _victim(config)
    plan = FaultPlan(crashes=(RouterCrash(router=victim, at=45.0),))
    scenario, result, _ = _run(replace(config, faults=plan))
    assert not scenario.routers[victim].alive
    # Everyone else routes around the hole.
    for name, router in scenario.routers.items():
        if name != victim:
            assert router.has_route(config.prefix)


def test_watchdog_armed_only_when_faults_present():
    config = _mesh_config()
    faulted = replace(config, faults=_crash_plan(_victim(config)))
    scenario, _, _ = _run(faulted, pulses=1)
    assert scenario.engine.watchdog is not None
    plain, _, _ = _run(config, pulses=1)
    assert plain.engine.watchdog is None


# ----------------------------------------------------------------------
# damping-state survival (line topology, surgical control)
# ----------------------------------------------------------------------


def _build_line(graceful=None, charge_on_session_reset=False):
    """origin -- r1 -- r2 -- r3 plus detour r1 -- r4 -- r3."""
    engine = Engine()
    rng = RngRegistry(11)
    network = Network(engine, rng)
    config = RouterConfig(
        damping=CISCO_DEFAULTS,
        mrai=MraiConfig(base=0.0),
        graceful_restart=graceful,
        charge_on_session_reset=charge_on_session_reset,
    )
    routers = {}
    for name in ("r1", "r2", "r3", "r4"):
        routers[name] = BgpRouter(name, engine, rng, config=config)
        network.add_node(routers[name])
    origin = OriginRouter("origin", engine, rng, prefix="p0", isp="r1")
    network.add_node(origin)
    link = LinkConfig(base_delay=0.001, jitter=0.0)
    for a, b in (
        ("origin", "r1"),
        ("r1", "r2"),
        ("r2", "r3"),
        ("r1", "r4"),
        ("r4", "r3"),
    ):
        network.add_link(a, b, link)
    origin.bring_up()
    engine.run()
    return engine, network, routers


def _suppress_r1_at_r2(engine, routers):
    r2 = routers["r2"]
    for _ in range(3):
        r2.process_update("r1", UpdateMessage(prefix="p0", as_path=None))
        engine.run(until=engine.now + 1.0)
        r2.process_update("r1", UpdateMessage(prefix="p0", as_path=("r1", "origin")))
        engine.run(until=engine.now + 1.0)
    assert r2.damping.is_suppressed("r1", "p0")


def test_neighbor_damping_state_survives_peer_crash_and_restart():
    engine, network, routers = _build_line()
    _suppress_r1_at_r2(engine, routers)
    network.crash_router("r1")
    engine.run(until=engine.now + 1.0)
    network.restart_router("r1")
    engine.run(until=engine.now + 5.0)
    r2 = routers["r2"]
    # r1's crash and fresh re-announcement do not launder the penalty:
    # the (r1, p0) entry at r2 is still suppressed. The crash wave also
    # charged the detour entry past the cut-off (the whole network sits
    # behind r1), so the re-learned route is present but unusable...
    assert r2.damping.is_suppressed("r1", "p0")
    assert r2.rib_in("r1").route("p0") is not None
    assert r2.best_route("p0") is None
    # ...until the reuse timers fire, at which point it comes back.
    engine.run(until=engine.now + 4000.0)
    assert r2.has_route("p0")


def test_crashed_router_loses_damping_state_but_observers_survive():
    engine, network, routers = _build_line()
    r2 = routers["r2"]
    observers_before = list(r2.damping.suppression_observers)
    # Build penalty at r2 itself, then crash *r2*: its own damping
    # state is control-plane memory and must be lost.
    r2.process_update("r1", UpdateMessage(prefix="p0", as_path=None))
    engine.run(until=engine.now + 1.0)
    assert r2.damping.penalty_value("r1", "p0") > 0.0
    network.crash_router("r2")
    engine.run(until=engine.now + 1.0)
    network.restart_router("r2")
    engine.run(until=engine.now + 5.0)
    assert r2.damping.penalty_value("r1", "p0") == 0.0
    # Metrics observers were re-adopted by the replacement manager, so
    # post-restart suppressions still reach the collector.
    assert r2.damping.suppression_observers == observers_before
    assert r2.has_route("p0")


def test_gr_helper_retains_stale_and_duplicate_refresh_avoids_charge():
    gr = GracefulRestartConfig(restart_time=60.0)
    engine, network, routers = _build_line(
        graceful=gr, charge_on_session_reset=True
    )
    r2 = routers["r2"]
    penalty_before = r2.damping.penalty_value("r1", "p0")
    network.crash_router("r1")
    engine.run(until=engine.now + 1.0)
    # Helper mode: the route is retained (stale) instead of withdrawn,
    # and nothing was charged.
    assert r2.gr_helper.helping("r1")
    assert r2.gr_helper.is_stale("r1", "p0")
    assert r2.has_route("p0")
    assert r2.damping.penalty_value("r1", "p0") == pytest.approx(penalty_before)
    network.restart_router("r1")
    engine.run(until=engine.now + 5.0)
    # The same path came back before the restart timer: stale cleared,
    # still uncharged.
    assert not r2.gr_helper.helping("r1")
    assert r2.damping.penalty_value("r1", "p0") == pytest.approx(penalty_before)


def test_gr_stale_expiry_flushes_and_charges():
    gr = GracefulRestartConfig(restart_time=10.0)
    engine, network, routers = _build_line(
        graceful=gr, charge_on_session_reset=True
    )
    r2 = routers["r2"]
    network.crash_router("r1")
    # Never restart r1: the stale hold expires and the implicit
    # withdrawal is processed (and charged, since configured).
    engine.run(until=engine.now + 30.0)
    assert not r2.gr_helper.helping("r1")
    assert r2.gr_helper.expiry_flushes == 1
    assert r2.stats.stale_routes_flushed == 1
    assert r2.rib_in("r1").route("p0") is None
    assert r2.damping.penalty_value("r1", "p0") > 0.0
    # The whole network sits behind r1, so once the ghosts are flushed
    # nothing is reachable — no stale route lingers forever.
    assert not r2.has_route("p0")


# ----------------------------------------------------------------------
# drop accounting (satellite: no silent losses)
# ----------------------------------------------------------------------


def test_link_fault_drops_are_counted_and_traced():
    config = _mesh_config()
    isp = config.isp
    neighbor = config.topology.neighbors(isp)[1]
    plan = FaultPlan(
        link_faults=(LinkFault(a=isp, b=neighbor, down_at=20.0, up_at=100.0),),
        session_resets=(SessionReset(a=isp, b=neighbor, at=150.0),),
    )
    scenario, result, tracer = _run(replace(config, faults=plan))
    collector = result.collector
    assert collector.drop_count > 0
    assert collector.drop_count == scenario.network.messages_dropped
    reasons = collector.drops_by_reason()
    assert set(reasons) <= {"link-down", "link-down-inflight", "node-down", "loss"}
    assert sum(reasons.values()) == collector.drop_count
    # Every drop is in the causal trace with a cause edge.
    drops = [record for record in tracer.records if record.kind == "drop"]
    assert len(drops) == collector.drop_count
    assert all(record.cause_id is not None for record in drops)


def test_lossy_link_drops_with_reason_loss():
    config = _mesh_config()
    isp = config.isp
    neighbor = config.topology.neighbors(isp)[0]
    plan = FaultPlan(
        impairments=(
            LinkImpairment(a=isp, b=neighbor, start=0.0, loss=0.5),
        )
    )
    scenario, result, _ = _run(replace(config, faults=plan), pulses=3)
    reasons = result.collector.drops_by_reason()
    assert reasons.get("loss", 0) > 0
    # Losses perturb but do not wedge: the episode drains and converges.
    assert scenario.engine.pending_count == 0
    for router in scenario.routers.values():
        assert router.has_route(config.prefix)


# ----------------------------------------------------------------------
# determinism: same plan + same seed = same bytes, whatever jobs is
# ----------------------------------------------------------------------


def _chaos_config() -> ScenarioConfig:
    config = _mesh_config(charge_on_session_reset=True)
    isp = config.isp
    a, b = isp, config.topology.neighbors(isp)[1]
    plan = FaultPlan(
        name="chaos",
        crashes=(RouterCrash(router=_victim(config), at=45.0, down_for=30.0),),
        link_faults=(LinkFault(a=a, b=b, down_at=70.0, up_at=110.0),),
        impairments=(
            LinkImpairment(a=a, b=b, start=0.0, duration=40.0, loss=0.2),
        ),
        storms=(
            FlapStorm(
                name="burst",
                links=((a, b),),
                start=120.0,
                flaps=2,
                min_interval=5.0,
                max_interval=15.0,
                down_time=3.0,
            ),
        ),
    )
    return replace(
        config,
        faults=plan,
        graceful_restart=GracefulRestartConfig(restart_time=90.0),
    )


def test_identical_faulted_runs_are_digest_identical():
    first = execute_sweep(_chaos_config(), (1, 2), jobs=1)
    second = execute_sweep(_chaos_config(), (1, 2), jobs=1)
    assert [o.digest for o in first] == [o.digest for o in second]


def test_faulted_sweep_digest_identical_jobs_1_vs_2():
    config = _chaos_config()
    sequential = execute_sweep(config, (0, 1, 2), jobs=1)
    parallel = execute_sweep(config, (0, 1, 2), jobs=2, mp_start_method="spawn")
    assert [o.digest for o in sequential] == [o.digest for o in parallel]
    assert sequential == parallel


# ----------------------------------------------------------------------
# the FX1 experiment itself
# ----------------------------------------------------------------------


def test_fx1_experiment_contrasts_gr_with_hard_reset():
    result = gr_faults_experiment()
    data = result.data
    baseline = data["no crash (baseline)"]
    hard = data["hard reset"]
    graceful = data["graceful restart"]
    assert baseline["fault_induced"] == 0
    assert hard["fault_induced"] > 0
    assert graceful["fault_induced"] == 0
    # The crash costs messages and convergence time; GR costs less.
    assert hard["messages"] > baseline["messages"]
    assert graceful["messages"] < hard["messages"]
    assert graceful["secondary"] < hard["secondary"]
    assert "FX1" in result.render()

"""Integration tests for the scenario event trace and router state dump."""

from __future__ import annotations

import pytest

from repro.core.params import CISCO_DEFAULTS
from repro.topology.mesh import mesh_topology
from repro.workload.pulses import PulseSchedule
from repro.workload.scenarios import ORIGIN_NAME, Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def traced_run():
    config = ScenarioConfig(topology=mesh_topology(4, 4), damping=CISCO_DEFAULTS, seed=3)
    scenario = Scenario(config)
    scenario.warm_up()
    result = scenario.run(PulseSchedule.regular(2, 60.0))
    return scenario, result


class TestTrace:
    def test_trace_contains_all_flaps(self, traced_run):
        _, result = traced_run
        flaps = result.trace.of_kind("flap")
        assert len(flaps) == 4  # 2 pulses = 2 downs + 2 ups
        assert [f.data["status"] for f in flaps] == ["down", "up", "down", "up"]
        assert all(f.node == ORIGIN_NAME for f in flaps)
        assert [f.time for f in flaps] == result.flap_times

    def test_trace_update_count_matches_collector(self, traced_run):
        _, result = traced_run
        updates = result.trace.of_kind("update")
        assert len(updates) == result.collector.message_count

    def test_trace_suppress_reuse_balance(self, traced_run):
        _, result = traced_run
        suppressed = result.trace.of_kind("suppress")
        reused = result.trace.of_kind("reuse")
        assert len(suppressed) == result.summary.total_suppressions
        # The run drains completely, so every suppression was reused.
        assert len(reused) == len(suppressed)

    def test_trace_is_time_ordered(self, traced_run):
        _, result = traced_run
        times = [record.time for record in result.trace]
        assert times == sorted(times)

    def test_trace_spans_the_episode(self, traced_run):
        _, result = traced_run
        first, last = result.trace.span()
        assert first == result.flap_times[0]
        assert last <= result.end_time


class TestDumpState:
    def test_dump_reflects_best_route(self, traced_run):
        scenario, result = traced_run
        prefix = scenario.config.prefix
        for router in scenario.routers.values():
            snapshot = router.dump_state(prefix)
            entry = snapshot["prefixes"][prefix]
            assert entry["best"] == router.best_route(prefix).as_path
            assert entry["originated"] is False

    def test_dump_rib_in_consistency(self, traced_run):
        scenario, _ = traced_run
        prefix = scenario.config.prefix
        isp_router = scenario.routers[scenario.isp]
        snapshot = isp_router.dump_state(prefix)
        rib_in = snapshot["prefixes"][prefix]["rib_in"]
        assert ORIGIN_NAME in rib_in
        assert rib_in[ORIGIN_NAME]["path"] == (ORIGIN_NAME,)
        assert rib_in[ORIGIN_NAME]["ever_announced"] is True
        assert rib_in[ORIGIN_NAME]["penalty"] >= 0.0

    def test_dump_origin_shows_origination(self, traced_run):
        scenario, _ = traced_run
        snapshot = scenario.origin.dump_state()
        entry = snapshot["prefixes"][scenario.config.prefix]
        assert entry["originated"] is True
        assert entry["best"] == (ORIGIN_NAME,)

    def test_dump_all_prefixes_default(self, traced_run):
        scenario, _ = traced_run
        router = next(iter(scenario.routers.values()))
        snapshot = router.dump_state()
        assert scenario.config.prefix in snapshot["prefixes"]
        assert snapshot["router"] == router.name

    def test_dump_is_plain_data(self, traced_run):
        import json

        scenario, _ = traced_run
        router = next(iter(scenario.routers.values()))
        snapshot = router.dump_state()
        # Tuples serialise as lists; everything else must be JSON-safe.
        json.dumps(snapshot, default=list)

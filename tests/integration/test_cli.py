"""Integration tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in ("T1", "F8", "F15", "X4"):
        assert experiment_id in out


def test_run_table1(capsys):
    assert main(["run", "T1"]) == 0
    out = capsys.readouterr().out
    assert "Cisco" in out
    assert "Juniper" in out
    assert "1000" in out


def test_run_fig3(capsys):
    assert main(["run", "F3"]) == 0
    out = capsys.readouterr().out
    assert "penalty" in out


def test_run_multiple(capsys):
    assert main(["run", "T1", "F3"]) == 0
    out = capsys.readouterr().out
    assert "T1" in out and "F3" in out


def test_run_unknown_experiment():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        main(["run", "F99"])


def test_simulate_small_mesh(capsys):
    code = main(
        [
            "simulate",
            "--topology", "mesh",
            "--nodes", "16",
            "--pulses", "1",
            "--damping", "cisco",
            "--seed", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "convergence time" in out
    assert "mesh-4x4" in out


def test_simulate_damping_off(capsys):
    code = main(
        ["simulate", "--topology", "mesh", "--nodes", "16", "--pulses", "2",
         "--damping", "off", "--seed", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "suppressions" in out


def test_simulate_internet_with_rcn(capsys):
    code = main(
        ["simulate", "--topology", "internet", "--nodes", "30", "--pulses", "1",
         "--rcn", "--seed", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "cisco + RCN" in out


def test_no_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_simulate_audit_alloc_reports_subphase_bytes(capsys):
    code = main(
        [
            "simulate",
            "--topology", "mesh",
            "--nodes", "9",
            "--pulses", "1",
            "--damping", "cisco",
            "--seed", "3",
            "--audit-alloc",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "allocation audit" in out
    assert "decision_process" in out
    assert "events=" in out


def test_intended_command(capsys):
    assert main(["intended", "--pulses", "4", "--vendor", "cisco"]) == 0
    out = capsys.readouterr().out
    assert "suppressed" in out
    assert "yes" in out  # suppression onset at pulse 3
    assert "cisco" in out


def test_intended_command_juniper(capsys):
    assert main(["intended", "--pulses", "3", "--vendor", "juniper", "--tup", "10"]) == 0
    out = capsys.readouterr().out
    assert "juniper" in out


def test_run_with_csv_export(capsys, tmp_path):
    assert main(["run", "T1", "--csv-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert (tmp_path / "T1.csv").exists()


# ----------------------------------------------------------------------
# lint subcommand (detlint)
# ----------------------------------------------------------------------


def test_lint_clean_tree_exits_zero(capsys):
    import pathlib

    import repro

    src_dir = pathlib.Path(repro.__file__).resolve().parents[1]
    assert main(["lint", str(src_dir)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_lint_seeded_violation_exits_nonzero(capsys, tmp_path):
    """Acceptance: a DET001/DET002 fixture fails with rule id and file:line."""
    fixture = tmp_path / "violations.py"
    fixture.write_text(
        "import random\n"
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
        "\n"
        "def draw():\n"
        "    return random.Random(0).random()\n",
        encoding="utf-8",
    )
    assert main(["lint", str(fixture)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "DET002" in out
    assert f"{fixture}:5:" in out  # file:line of the wall-clock read


def test_lint_suppression_comment_restores_exit_zero(capsys, tmp_path):
    fixture = tmp_path / "suppressed.py"
    fixture.write_text(
        "import time\n"
        "t = time.time()  # detlint: disable=DET001\n",
        encoding="utf-8",
    )
    assert main(["lint", str(fixture)]) == 0
    out = capsys.readouterr().out
    assert "1 suppressed" in out


def test_lint_json_format(capsys, tmp_path):
    import json

    fixture = tmp_path / "bad.py"
    fixture.write_text("import time\nt = time.time()\n", encoding="utf-8")
    assert main(["lint", "--format", "json", str(fixture)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts_by_rule"] == {"DET001": 1}


def test_lint_cache_dir_reports_stats_and_identical_json(capsys, tmp_path):
    fixture = tmp_path / "bad.py"
    fixture.write_text("import time\nt = time.time()\n", encoding="utf-8")
    cache_dir = tmp_path / "lint_cache"
    assert main(
        ["lint", "--format", "json", "--cache-dir", str(cache_dir), str(fixture)]
    ) == 1
    cold = capsys.readouterr()
    assert main(
        ["lint", "--format", "json", "--cache-dir", str(cache_dir), str(fixture)]
    ) == 1
    warm = capsys.readouterr()
    # Findings JSON is byte-identical; the cache stats line goes to stderr.
    assert warm.out == cold.out
    assert "lint cache:" in warm.err
    assert "1/1 local hits" in warm.err


def test_lint_jobs_matches_sequential_output(capsys, tmp_path):
    for name in ("a", "b", "c"):
        (tmp_path / f"{name}.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
    assert main(["lint", "--format", "json", str(tmp_path)]) == 1
    sequential = capsys.readouterr().out
    assert main(["lint", "--format", "json", "--jobs", "2", str(tmp_path)]) == 1
    parallel = capsys.readouterr().out
    assert parallel == sequential


def test_lint_rejects_bad_jobs(capsys):
    assert main(["lint", "--jobs", "0", "src"]) == 2


def test_lint_pass_perf_lists_info_with_show_info(capsys, tmp_path):
    fixture = tmp_path / "hot.py"
    fixture.write_text(
        "def fmt(peer):\n    return f'peer {peer}'\n", encoding="utf-8"
    )
    # Outside the hot set the finding is info: advisory, exit 0.
    assert main(["lint", "--pass", "perf", str(fixture)]) == 0
    out = capsys.readouterr().out
    assert "info" in out
    assert "PERF004" not in out  # not listed without --show-info
    assert main(["lint", "--pass", "perf", "--show-info", str(fixture)]) == 0
    out = capsys.readouterr().out
    assert "PERF004" in out


def test_lint_select_and_ignore(capsys, tmp_path):
    fixture = tmp_path / "bad.py"
    fixture.write_text("import time\nt = time.time()\n", encoding="utf-8")
    assert main(["lint", "--ignore", "DET001", str(fixture)]) == 0
    capsys.readouterr()
    assert main(["lint", "--select", "DET002", str(fixture)]) == 0


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "DET001" in out and "DET008" in out


def test_lint_unknown_rule_id_is_usage_error(capsys):
    assert main(["lint", "--select", "DET999", "src"]) == 2
    assert "DET999" in capsys.readouterr().err


def test_lint_missing_path_is_usage_error(capsys):
    assert main(["lint", "/nonexistent/path/xyz"]) == 2

# ----------------------------------------------------------------------
# lint passes (semlint), baselines, invariant checking
# ----------------------------------------------------------------------


MIXED_FIXTURE = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
    "\n"
    "def is_fresh(rcn, last_seq):\n"
    "    return rcn.seq != last_seq\n"
)


def test_lint_pass_selection(capsys, tmp_path):
    fixture = tmp_path / "mixed.py"
    fixture.write_text(MIXED_FIXTURE, encoding="utf-8")

    assert main(["lint", "--pass", "det", str(fixture)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "SEM006" not in out

    assert main(["lint", "--pass", "sem", str(fixture)]) == 1
    out = capsys.readouterr().out
    assert "SEM006" in out and "DET001" not in out

    assert main(["lint", "--pass", "all", str(fixture)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "SEM006" in out


def test_lint_list_rules_includes_sem_catalogue(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SEM001" in out and "SEM007" in out


def test_lint_baseline_record_and_compare(capsys, tmp_path):
    fixture = tmp_path / "legacy.py"
    fixture.write_text(MIXED_FIXTURE, encoding="utf-8")
    baseline = tmp_path / "lint-baseline.json"

    # Without a baseline the findings fail the run.
    assert main(["lint", str(fixture)]) == 1
    capsys.readouterr()

    # Record: writes the ledger and exits clean.
    assert (
        main(["lint", "--baseline", str(baseline), "--update-baseline", str(fixture)])
        == 0
    )
    capsys.readouterr()
    assert baseline.exists()

    # Compare: known findings are demoted, run is clean again.
    assert main(["lint", "--baseline", str(baseline), str(fixture)]) == 0
    out = capsys.readouterr().out
    assert "2 baselined" in out

    # A new finding is NOT covered by the ledger.
    fixture.write_text(MIXED_FIXTURE + '\nfor name in {"a", "b"}:\n    pass\n',
                       encoding="utf-8")
    assert main(["lint", "--baseline", str(baseline), str(fixture)]) == 1
    assert "DET003" in capsys.readouterr().out


def test_lint_update_baseline_requires_baseline_path(capsys):
    assert main(["lint", "--update-baseline", "src"]) == 2
    assert "--baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# timerlint pass, --fail-on, timer audit
# ----------------------------------------------------------------------


TIMER_FIXTURE = (
    "from repro.sim.timers import Timer\n"
    "\n"
    "DELAY = 5.0\n"
    "\n"
    "def leak(engine, cb):\n"
    '    t = Timer(engine, cb, name="x", actor="r", tag="reuse")\n'
    "    t.start(DELAY)\n"
)

#: Fires only warning-severity rules (TIM007).
WARNING_FIXTURE = (
    "from repro.sim.timers import Timer\n"
    "\n"
    "def build(engine, cb):\n"
    '    return Timer(engine, cb, name="x")\n'
)


def test_lint_pass_tim_selection(capsys, tmp_path):
    fixture = tmp_path / "timers.py"
    fixture.write_text(MIXED_FIXTURE + "\n" + TIMER_FIXTURE, encoding="utf-8")

    assert main(["lint", "--pass", "tim", str(fixture)]) == 1
    out = capsys.readouterr().out
    assert "TIM001" in out and "DET001" not in out and "SEM006" not in out

    assert main(["lint", "--pass", "all", str(fixture)]) == 1
    out = capsys.readouterr().out
    assert "TIM001" in out and "DET001" in out and "SEM006" in out


def test_lint_list_rules_includes_tim_catalogue(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "TIM001" in out and "TIM010" in out
    assert "TIM003 [warning]" in out


def test_lint_fail_on_exit_codes(capsys, tmp_path):
    errors = tmp_path / "errors.py"
    errors.write_text(TIMER_FIXTURE, encoding="utf-8")
    warnings = tmp_path / "warnings.py"
    warnings.write_text(WARNING_FIXTURE, encoding="utf-8")

    # Default --fail-on warning: any finding fails.
    assert main(["lint", str(warnings)]) == 1
    capsys.readouterr()

    # --fail-on error: warning-only findings are reported but exit 0.
    assert main(["lint", "--fail-on", "error", str(warnings)]) == 0
    out = capsys.readouterr().out
    assert "TIM007" in out

    # ... while error findings still fail.
    assert main(["lint", "--fail-on", "error", str(errors)]) == 1
    capsys.readouterr()

    # --fail-on never: findings never fail the run.
    assert main(["lint", "--fail-on", "never", str(errors)]) == 0
    capsys.readouterr()

    # ... but parse errors always do.
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n", encoding="utf-8")
    assert main(["lint", "--fail-on", "never", str(broken)]) == 1
    capsys.readouterr()


def test_lint_fail_on_bad_value_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--fail-on", "bogus", "src"])
    assert excinfo.value.code == 2
    capsys.readouterr()


def test_lint_compare_against_empty_baseline(capsys, tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    baseline = tmp_path / "empty-baseline.json"
    assert (
        main(["lint", "--baseline", str(baseline), "--update-baseline", str(clean)])
        == 0
    )
    capsys.readouterr()

    # An empty ledger demotes nothing: new findings still fail.
    dirty = tmp_path / "dirty.py"
    dirty.write_text(TIMER_FIXTURE, encoding="utf-8")
    assert main(["lint", "--baseline", str(baseline), str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "TIM001" in out and "baselined" not in out


def test_simulate_audit_timers(capsys):
    code = main(
        [
            "simulate",
            "--nodes", "9",
            "--pulses", "1",
            "--seed", "11",
            "--audit-timers",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "timer audit" in out
    assert "ok (" in out and "transitions" in out


def test_simulate_check_invariants(capsys):
    assert (
        main(
            [
                "simulate",
                "--nodes",
                "9",
                "--pulses",
                "1",
                "--check-invariants",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "invariants" in out
    assert "ok (9 routers)" in out


def test_run_check_invariants(capsys):
    from repro.experiments.base import invariant_checking_enabled, set_invariant_checking

    try:
        assert main(["run", "F3", "--check-invariants"]) == 0
    finally:
        set_invariant_checking(False)
    assert not invariant_checking_enabled()
    assert "F3" in capsys.readouterr().out


# ----------------------------------------------------------------------
# trace subcommand and smoke-digest verification
# ----------------------------------------------------------------------


def test_trace_small_mesh(capsys, tmp_path):
    out_path = tmp_path / "trace.jsonl"
    summary_path = tmp_path / "summary.json"
    profile_path = tmp_path / "profile.json"
    code = main(
        [
            "trace",
            "--topology", "mesh",
            "--nodes", "16",
            "--pulses", "2",
            "--seed", "5",
            "--out", str(out_path),
            "--json", str(summary_path),
            "--profile", str(profile_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "causal trace summary" in out
    assert "trace digest" in out

    import json as _json

    from repro.trace import parse_jsonl

    records = parse_jsonl(out_path.read_text(encoding="utf-8"))
    assert records
    assert sum(1 for r in records if r.kind == "flap") == 4

    summary = _json.loads(summary_path.read_text(encoding="utf-8"))
    assert summary["records_total"] == len(records)
    profile = _json.loads(profile_path.read_text(encoding="utf-8"))
    assert profile["schema"] == 2
    names = [p["phase"] for p in profile["phases"]]
    # Explicit phases first (in execution order), then the engine
    # probe's labelled sub-phases.
    assert names[:4] == ["build", "warm_up", "episode", "rib_scan"]
    assert "decision_process" in names
    probe_rows = [p for p in profile["phases"] if p.get("source") == "engine_probe"]
    assert probe_rows and all(r["events"] > 0 for r in probe_rows)


def test_trace_show_filters_by_kind(capsys):
    assert main(["trace", "--nodes", "9", "--pulses", "1", "--show", "2",
                 "--kinds", "flap"]) == 0
    out = capsys.readouterr().out
    assert '"kind":"flap"' in out
    assert '"kind":"send"' not in out


def test_trace_rejects_unknown_kind(capsys):
    assert main(["trace", "--nodes", "9", "--pulses", "1",
                 "--kinds", "nonsense"]) == 2
    assert "unknown kind" in capsys.readouterr().err


def test_run_smoke_digest_round_trip(capsys, tmp_path):
    from repro.experiments.base import set_smoke_mode, smoke_mode_enabled

    digests = tmp_path / "digests.json"
    try:
        assert main(["run", "F8", "--smoke", "--write-digests", str(digests)]) == 0
        capsys.readouterr()
        assert main(["run", "F8", "--smoke", "--verify-digests", str(digests)]) == 0
    finally:
        set_smoke_mode(False)
    assert not smoke_mode_enabled()
    assert "all sweep digests match" in capsys.readouterr().out


def test_run_smoke_digest_mismatch_fails(capsys, tmp_path):
    import json as _json

    from repro.experiments.base import set_smoke_mode

    digests = tmp_path / "digests.json"
    try:
        assert main(["run", "F8", "--smoke", "--write-digests", str(digests)]) == 0
        payload = _json.loads(digests.read_text(encoding="utf-8"))
        series = next(iter(payload["F8"]))
        payload["F8"][series]["1"] = "0" * 64
        digests.write_text(_json.dumps(payload), encoding="utf-8")
        capsys.readouterr()
        assert main(["run", "F8", "--smoke", "--verify-digests", str(digests)]) == 1
    finally:
        set_smoke_mode(False)
    assert "digest mismatch" in capsys.readouterr().err


def test_committed_smoke_digests_match_current_code(capsys):
    """The expectation file CI pins the smoke sweep to must track the
    simulator: if this fails, regenerate it with
    ``rfd-repro run F8 --smoke --write-digests benchmarks/results/f8_smoke_digests.json``."""
    import pathlib

    from repro.experiments.base import set_smoke_mode

    committed = (
        pathlib.Path(__file__).resolve().parents[2]
        / "benchmarks" / "results" / "f8_smoke_digests.json"
    )
    try:
        assert main(["run", "F8", "--smoke", "--verify-digests", str(committed)]) == 0
    finally:
        set_smoke_mode(False)
    assert "all sweep digests match" in capsys.readouterr().out


def test_run_rejects_bad_chunk_size():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="chunk_size"):
        main(["run", "T1", "--chunk-size", "0"])


def test_run_rejects_unknown_snapshot_transport():
    # argparse owns the choices list, so a bad transport exits before
    # any experiment code runs.
    with pytest.raises(SystemExit):
        main(["run", "T1", "--snapshot-transport", "telepathy"])


def test_run_smoke_with_sweep_tuning_matches_committed_digests(capsys):
    """Chunking and spill transport must not move a digest: the tuned
    smoke sweep still matches the committed F8 expectation file."""
    import pathlib

    from repro.experiments.base import set_smoke_mode, set_sweep_tuning

    committed = (
        pathlib.Path(__file__).resolve().parents[2]
        / "benchmarks" / "results" / "f8_smoke_digests.json"
    )
    try:
        assert (
            main(
                [
                    "run", "F8", "--smoke",
                    "--jobs", "2",
                    "--chunk-size", "2",
                    "--snapshot-transport", "spill",
                    "--verify-digests", str(committed),
                ]
            )
            == 0
        )
    finally:
        set_smoke_mode(False)
        set_sweep_tuning(None, "auto")
        from repro.experiments.base import set_default_jobs

        set_default_jobs(1)
    assert "all sweep digests match" in capsys.readouterr().out

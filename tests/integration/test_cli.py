"""Integration tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in ("T1", "F8", "F15", "X4"):
        assert experiment_id in out


def test_run_table1(capsys):
    assert main(["run", "T1"]) == 0
    out = capsys.readouterr().out
    assert "Cisco" in out
    assert "Juniper" in out
    assert "1000" in out


def test_run_fig3(capsys):
    assert main(["run", "F3"]) == 0
    out = capsys.readouterr().out
    assert "penalty" in out


def test_run_multiple(capsys):
    assert main(["run", "T1", "F3"]) == 0
    out = capsys.readouterr().out
    assert "T1" in out and "F3" in out


def test_run_unknown_experiment():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        main(["run", "F99"])


def test_simulate_small_mesh(capsys):
    code = main(
        [
            "simulate",
            "--topology", "mesh",
            "--nodes", "16",
            "--pulses", "1",
            "--damping", "cisco",
            "--seed", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "convergence time" in out
    assert "mesh-4x4" in out


def test_simulate_damping_off(capsys):
    code = main(
        ["simulate", "--topology", "mesh", "--nodes", "16", "--pulses", "2",
         "--damping", "off", "--seed", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "suppressions" in out


def test_simulate_internet_with_rcn(capsys):
    code = main(
        ["simulate", "--topology", "internet", "--nodes", "30", "--pulses", "1",
         "--rcn", "--seed", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "cisco + RCN" in out


def test_no_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_intended_command(capsys):
    assert main(["intended", "--pulses", "4", "--vendor", "cisco"]) == 0
    out = capsys.readouterr().out
    assert "suppressed" in out
    assert "yes" in out  # suppression onset at pulse 3
    assert "cisco" in out


def test_intended_command_juniper(capsys):
    assert main(["intended", "--pulses", "3", "--vendor", "juniper", "--tup", "10"]) == 0
    out = capsys.readouterr().out
    assert "juniper" in out


def test_run_with_csv_export(capsys, tmp_path):
    assert main(["run", "T1", "--csv-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert (tmp_path / "T1.csv").exists()

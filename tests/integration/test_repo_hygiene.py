"""Repository-level consistency checks.

These guard the promises the documentation makes: every experiment in
the registry has a benchmark that regenerates it, every example script
is syntactically valid and importable, and the public API exports
resolve.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

import repro
from repro.experiments.registry import EXPERIMENTS

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"
EXAMPLES_DIR = REPO_ROOT / "examples"


def _bench_sources() -> str:
    return "\n".join(
        path.read_text(encoding="utf-8") for path in BENCH_DIR.glob("test_*.py")
    )


def test_every_registered_experiment_has_a_benchmark():
    sources = _bench_sources()
    import repro.experiments.registry as registry_module

    source_of_registry = pathlib.Path(registry_module.__file__).read_text()
    del source_of_registry
    for experiment_id, driver in EXPERIMENTS.items():
        assert driver.__name__ in sources, (
            f"experiment {experiment_id} ({driver.__name__}) has no benchmark"
        )


def test_every_experiment_driver_is_callable_without_arguments():
    import inspect

    for experiment_id, driver in EXPERIMENTS.items():
        signature = inspect.signature(driver)
        required = [
            name
            for name, parameter in signature.parameters.items()
            if parameter.default is inspect.Parameter.empty
            and parameter.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        ]
        assert not required, f"{experiment_id}: required params {required}"


def test_examples_parse_and_have_main():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 5, "expected at least five example scripts"
    for script in scripts:
        tree = ast.parse(script.read_text(encoding="utf-8"))
        functions = {
            node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions, f"{script.name} has no main()"
        assert ast.get_docstring(tree), f"{script.name} has no module docstring"


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


def test_all_documented_artefacts_registered():
    """DESIGN.md's experiment index and the registry must agree."""
    design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    for experiment_id in EXPERIMENTS:
        assert f"| {experiment_id} " in design, (
            f"{experiment_id} missing from DESIGN.md experiment index"
        )


def test_every_package_module_has_docstring():
    source_root = REPO_ROOT / "src" / "repro"
    missing = []
    for path in source_root.rglob("*.py"):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            missing.append(str(path.relative_to(REPO_ROOT)))
    assert not missing, f"modules without docstrings: {missing}"


@pytest.mark.parametrize("required", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
def test_documentation_files_exist(required):
    path = REPO_ROOT / required
    assert path.exists() and path.stat().st_size > 1000


def test_detlint_full_tree_is_clean():
    """Tier-1 static-analysis gate: the whole source tree passes all
    four lint passes with no baseline and no blocking findings.

    This is the machine-checked form of the conventions the engine's and
    the RFD layers' docstrings promise — see docs/STATIC_ANALYSIS.md.
    New blocking findings mean a wall-clock read, hand-rolled timer
    arithmetic, a magic damping constant, a hot-path allocation, or one
    of the other DET/SEM/TIM/PERF hazards crept into src/; fix it or
    justify a construct-scoped ``# <pass>lint: disable=...`` suppression.
    Info-severity perflint findings (hazards outside the profiled hot
    set) are advisory and never gate.
    """
    from repro.lint import lint_paths, make_config, render_text

    report = lint_paths(
        [str(REPO_ROOT / "src")], make_config(passes=("all",))
    )
    assert report.files_checked > 50
    assert not report.parse_errors, "\n" + render_text(report)
    assert not report.blocking_findings("warning"), "\n" + render_text(report)


def test_detlint_rule_catalogue_is_documented():
    """Every rule id appears in docs/STATIC_ANALYSIS.md with its rationale."""
    from repro.lint import RULE_IDS

    doc = (REPO_ROOT / "docs" / "STATIC_ANALYSIS.md").read_text(encoding="utf-8")
    for rule_id in RULE_IDS:
        assert rule_id in doc, f"{rule_id} missing from docs/STATIC_ANALYSIS.md"

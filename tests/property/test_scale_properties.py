"""Property-based tests for the scale pipeline: AS-path interning and
the power-law generator's determinism contract."""

from __future__ import annotations

import pickle

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.paths import PathTable
from repro.topology.scale import powerlaw_topology

as_names = st.integers(min_value=0, max_value=40).map(lambda n: f"as{n}")
paths = st.lists(as_names, min_size=1, max_size=6).map(tuple)


@given(st.lists(paths, min_size=1, max_size=40))
def test_intern_resolve_round_trip(path_list):
    table = PathTable()
    ids = [table.intern(p) for p in path_list]
    for path, pid in zip(path_list, ids):
        assert table.resolve(pid) == path
        assert table.id_of(path) == pid
    # Dense ids: exactly one per distinct path, in first-seen order.
    assert len(table) == len(set(path_list))
    assert sorted(set(ids)) == list(range(len(table)))


@given(st.lists(paths, min_size=1, max_size=40))
def test_equal_paths_become_identical_objects(path_list):
    table = PathTable()
    canon = [table.canonical(p) for p in path_list]
    for a, pa in zip(canon, path_list):
        for b, pb in zip(canon, path_list):
            if pa == pb:
                assert a is b
            else:
                assert a != b


@given(st.lists(paths, min_size=1, max_size=40))
def test_ids_are_stable_across_pickling(path_list):
    """Warm-state snapshots depend on interned ids surviving a pickle
    round-trip unchanged."""
    table = PathTable()
    ids = [table.intern(p) for p in path_list]
    clone = pickle.loads(pickle.dumps(table))
    assert [clone.intern(p) for p in path_list] == ids
    assert len(clone) == len(table)


@given(
    nodes=st.integers(min_value=10, max_value=120),
    seed=st.integers(min_value=0, max_value=30),
    attachment=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_powerlaw_generator_is_deterministic(nodes, seed, attachment):
    first = powerlaw_topology(nodes, attachment=attachment, seed=seed)
    second = powerlaw_topology(nodes, attachment=attachment, seed=seed)
    assert first.edges == second.edges
    assert first.nodes == second.nodes
    assert nx.is_connected(first.graph)
    # Edge budget: clique core plus min(attachment, existing) per node.
    core = 4
    expected = core * (core - 1) // 2 + sum(
        min(attachment, i) for i in range(core, nodes)
    )
    assert first.edge_count == expected


@given(seed=st.integers(min_value=0, max_value=30))
@settings(max_examples=10, deadline=None)
def test_powerlaw_exponent_zero_still_connects(seed):
    topology = powerlaw_topology(60, exponent=0.0, seed=seed)
    assert nx.is_connected(topology.graph)
    assert topology.node_count == 60

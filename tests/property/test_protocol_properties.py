"""Property-based tests of whole-protocol invariants.

These run complete simulations on randomly drawn topologies, seeds, and
workloads, then check global safety properties that must hold in *every*
converged state — the strongest guard against protocol-logic bugs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.damping import DampingManager
from repro.core.params import CISCO_DEFAULTS, UpdateKind
from repro.bgp.decision import select_best
from repro.sim.engine import Engine
from repro.topology.internet import internet_topology
from repro.topology.mesh import mesh_topology
from repro.workload.scenarios import ORIGIN_NAME, Scenario, ScenarioConfig
from repro.workload.pulses import PulseSchedule


def _check_converged_invariants(scenario: Scenario) -> None:
    """Invariants of a fully drained network with the origin up.

    Delegates to the public checker and additionally verifies the paths
    terminate at the origin.
    """
    from repro.analysis.invariants import check_converged_invariants

    report = check_converged_invariants(scenario)
    assert report.ok, [str(v) for v in report.violations]
    assert report.routers_checked == len(scenario.routers)
    prefix = scenario.config.prefix
    for router in scenario.routers.values():
        best = router.best_route(prefix)
        assert best is not None
        assert best.as_path[-1] == ORIGIN_NAME


@given(
    size=st.sampled_from([(3, 3), (3, 4), (4, 4)]),
    pulses=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
    damping=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_mesh_network_converges_to_consistent_state(size, pulses, seed, damping):
    config = ScenarioConfig(
        topology=mesh_topology(*size),
        damping=CISCO_DEFAULTS if damping else None,
        seed=seed,
    )
    scenario = Scenario(config)
    scenario.warm_up()
    scenario.run(PulseSchedule.regular(pulses, 60.0))
    assert scenario.engine.pending_count == 0
    _check_converged_invariants(scenario)


@given(
    nodes=st.integers(min_value=8, max_value=25),
    topo_seed=st.integers(min_value=0, max_value=30),
    pulses=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_internet_network_converges_to_consistent_state(
    nodes, topo_seed, pulses, seed
):
    config = ScenarioConfig(
        topology=internet_topology(nodes, seed=topo_seed),
        damping=CISCO_DEFAULTS,
        seed=seed,
    )
    scenario = Scenario(config)
    scenario.warm_up()
    scenario.run(PulseSchedule.regular(pulses, 60.0))
    _check_converged_invariants(scenario)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    pulses=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_rcn_mode_preserves_protocol_invariants(seed, pulses):
    config = ScenarioConfig(
        topology=mesh_topology(3, 4), damping=CISCO_DEFAULTS, rcn=True, seed=seed
    )
    scenario = Scenario(config)
    scenario.warm_up()
    scenario.run(PulseSchedule.regular(pulses, 60.0))
    _check_converged_invariants(scenario)


# ----------------------------------------------------------------------
# damping state machine, driven by random update trains
# ----------------------------------------------------------------------

update_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=400.0),  # gap before the update
        st.sampled_from(
            [UpdateKind.WITHDRAWAL, UpdateKind.REANNOUNCEMENT, UpdateKind.ATTRIBUTE_CHANGE]
        ),
        st.booleans(),  # charge?
    ),
    min_size=1,
    max_size=50,
)


@given(steps=update_steps)
@settings(max_examples=60, deadline=None)
def test_damping_manager_state_machine_invariants(steps):
    engine = Engine()
    noisy_flags = []
    manager = DampingManager(
        engine, CISCO_DEFAULTS, "r", lambda p, d: noisy_flags.append((p, d)) or False
    )
    for gap, kind, charge in steps:
        engine.schedule(gap, lambda: None)
        engine.run()
        manager.record_update("peer", "p0", kind, charge=charge)
        now = engine.now
        penalty = manager.penalty_value("peer", "p0", now)
        suppressed = manager.is_suppressed("peer", "p0")
        pending = manager.reuse_timer_expiry("peer", "p0")
        # Invariant: suppressed <=> a reuse timer is pending.
        assert suppressed == (pending is not None)
        # Invariant: penalty within bounds.
        assert 0.0 <= penalty <= CISCO_DEFAULTS.penalty_ceiling + 1e-9
        # Invariant: while suppressed, the pending expiry is exactly when
        # the penalty will hit the reuse threshold.
        if pending is not None:
            expected = now + CISCO_DEFAULTS.reuse_delay(penalty)
            assert abs(pending - expected) < 1e-6
    # Drain all timers: nothing may stay suppressed, and each completed
    # suppression produced exactly one reuse event.
    engine.run()
    assert manager.suppressed_entries() == []
    completed = [r for r in manager.suppressions if r.ended is not None]
    assert len(completed) == len(manager.reuse_events)

"""Property-based tests for the event engine and timers."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.timers import Timer

delays = st.lists(
    st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=50
)


@given(delays=delays)
def test_events_fire_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=delays)
def test_clock_equals_last_event_after_drain(delays):
    engine = Engine()
    for delay in delays:
        engine.schedule(delay, lambda: None)
    engine.run_until_idle(max_time=1e9)
    assert engine.now == max(delays)
    assert engine.pending_count == 0


@given(delays=delays, cancel_mask=st.lists(st.booleans(), min_size=1, max_size=50))
def test_cancelled_subset_never_fires(delays, cancel_mask):
    engine = Engine()
    fired = []
    events = []
    for i, delay in enumerate(delays):
        events.append(engine.schedule(delay, lambda i=i: fired.append(i)))
    cancelled = set()
    for i, event in enumerate(events):
        if cancel_mask[i % len(cancel_mask)]:
            event.cancel()
            cancelled.add(i)
    engine.run()
    assert set(fired).isdisjoint(cancelled)
    assert set(fired) | cancelled == set(range(len(delays)))


@given(
    reschedules=st.lists(
        st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=10
    )
)
@settings(max_examples=50)
def test_timer_fires_exactly_once_at_final_schedule(reschedules):
    engine = Engine()
    fired = []
    timer = Timer(engine, lambda: fired.append(engine.now))
    for delay in reschedules:
        timer.reschedule(delay)
    engine.run()
    assert fired == [reschedules[-1]]


@given(delays=delays, horizon=st.floats(min_value=0.0, max_value=1000.0))
def test_run_until_executes_exactly_events_within_horizon(delays, horizon):
    engine = Engine()
    executed = engine_count = 0
    for delay in delays:
        engine.schedule(delay, lambda: None)
    executed = engine.run(until=horizon)
    expected = sum(1 for d in delays if d <= horizon)
    assert executed == expected
    del engine_count

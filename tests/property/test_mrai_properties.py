"""Property-based tests for the MRAI limiter, link FIFO, and the
selective-damping filter."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.mrai import MraiConfig, MraiLimiter
from repro.core.params import UpdateKind
from repro.core.selective import SelectiveDampingFilter, compare_paths
from repro.net.link import LinkConfig
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class _Sink(Node):
    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.payloads = []

    def handle_message(self, message: Message) -> None:
        self.payloads.append(message.payload)


# ----------------------------------------------------------------------
# MRAI limiter
# ----------------------------------------------------------------------

mrai_actions = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.sampled_from(["p1", "p2"])),
        st.tuples(st.just("defer"), st.sampled_from(["p1", "p2"])),
        st.tuples(st.just("wait"), st.floats(min_value=0.1, max_value=60.0)),
    ),
    min_size=1,
    max_size=40,
)


@given(actions=mrai_actions, seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_mrai_limiter_invariants(actions, seed):
    engine = Engine()
    flushes = []

    def flush(peer: str, prefixes: set) -> bool:
        flushes.append((engine.now, peer, set(prefixes)))
        return True

    limiter = MraiLimiter(
        engine, MraiConfig(base=30.0), "r", RngRegistry(seed), flush
    )
    for action in actions:
        if action[0] == "send":
            peer = action[1]
            if limiter.may_send_now(peer):
                limiter.note_sent(peer)
                # Invariant: immediately after a send, the peer is held off.
                assert not limiter.may_send_now(peer)
        elif action[0] == "defer":
            peer = action[1]
            if not limiter.may_send_now(peer):
                limiter.defer(peer, "p0")
        else:
            engine.run(until=engine.now + action[1])
    engine.run()
    # Invariant: every flush delivered a non-empty prefix set, at a time
    # no earlier than 0.75 * base after some send.
    for time, peer, prefixes in flushes:
        assert prefixes
        assert time >= 30.0 * 0.75 - 1e-9
    # Invariant: after a full drain nothing is pending and all peers may
    # send again.
    assert not limiter.has_pending()
    assert limiter.may_send_now("p1") and limiter.may_send_now("p2")


# ----------------------------------------------------------------------
# link FIFO under arbitrary jitter
# ----------------------------------------------------------------------


@given(
    count=st.integers(min_value=1, max_value=40),
    jitter=st.floats(min_value=0.0, max_value=2.0),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_link_preserves_fifo_for_any_jitter(count, jitter, seed):
    engine = Engine()
    network = Network(engine, RngRegistry(seed))
    a = network.add_node(_Sink("a"))
    b = network.add_node(_Sink("b"))
    network.add_link("a", "b", LinkConfig(base_delay=0.01, jitter=jitter))
    for i in range(count):
        a.send("b", i)
    engine.run()
    assert b.payloads == list(range(count))


# ----------------------------------------------------------------------
# selective-damping filter
# ----------------------------------------------------------------------

path_lengths = st.lists(st.integers(min_value=1, max_value=12), min_size=2, max_size=20)


@given(lengths=path_lengths)
def test_selective_filters_every_consistent_worsening_step(lengths):
    """A strictly worsening announcement chain after the first element is
    pure path exploration: every tagged step must be filtered."""
    worsening = sorted(set(lengths))
    if len(worsening) < 2:
        return
    selective = SelectiveDampingFilter()
    previous = None
    for index, length in enumerate(worsening):
        preference = compare_paths(previous, length)
        charged = selective.should_charge("p", UpdateKind.ATTRIBUTE_CHANGE, preference)
        if index == 0:
            assert charged  # first announcement always charges
        else:
            assert not charged, f"step to length {length} wrongly charged"
        previous = length


@given(lengths=path_lengths)
def test_compare_paths_direction_consistency(lengths):
    for previous, new in zip(lengths, lengths[1:]):
        preference = compare_paths(previous, new)
        if new > previous:
            assert preference.direction == -1
        elif new < previous:
            assert preference.direction == 1
        else:
            assert preference.direction == 0
        assert preference.path_length == new

"""Property-based tests for the RCN history filter and the intended model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intended import IntendedBehaviorModel
from repro.core.params import CISCO_DEFAULTS, JUNIPER_DEFAULTS
from repro.core.rcn import RootCause, RootCauseHistory

causes = st.builds(
    RootCause,
    link=st.just(("o", "i")),
    status=st.sampled_from(["down", "up"]),
    seq=st.integers(min_value=0, max_value=20),
)

peers = st.sampled_from(["a", "b", "c"])


@given(sequence=st.lists(st.tuples(peers, causes), min_size=1, max_size=100))
def test_each_unique_cause_charges_exactly_once_per_peer(sequence):
    history = RootCauseHistory()
    charged = set()
    for peer, cause in sequence:
        if history.should_charge(peer, cause):
            assert (peer, cause.key) not in charged
            charged.add((peer, cause.key))
        else:
            assert (peer, cause.key) in charged
    assert history.charged_count == len(charged)
    assert history.charged_count + history.filtered_count == len(sequence)


@given(
    sequence=st.lists(causes, min_size=1, max_size=60),
    capacity=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=60)
def test_history_size_never_exceeds_capacity(sequence, capacity):
    history = RootCauseHistory(capacity=capacity)
    for cause in sequence:
        history.should_charge("peer", cause)
        assert history.peer_history_size("peer") <= capacity


@given(pulses=st.integers(min_value=0, max_value=30),
       interval=st.floats(min_value=10.0, max_value=600.0))
def test_intended_prediction_invariants(pulses, interval):
    model = IntendedBehaviorModel(CISCO_DEFAULTS, flap_interval=interval, tup=30.0)
    prediction = model.predict(pulses)
    assert prediction.pulses == pulses
    assert prediction.penalty_at_final >= 0.0
    assert prediction.penalty_at_final <= CISCO_DEFAULTS.penalty_ceiling + 1e-9
    assert prediction.reuse_delay >= 0.0
    assert prediction.reuse_delay <= CISCO_DEFAULTS.max_hold_down + 1e-6
    if prediction.suppressed:
        assert prediction.suppression_pulse is not None
        assert 1 <= prediction.suppression_pulse <= pulses
        assert prediction.convergence_time >= model.tup
    else:
        assert prediction.reuse_delay == 0.0
        assert prediction.convergence_time == (model.tup if pulses else 0.0)


@given(interval=st.floats(min_value=10.0, max_value=200.0))
def test_convergence_nondecreasing_past_suppression(interval):
    model = IntendedBehaviorModel(CISCO_DEFAULTS, flap_interval=interval, tup=30.0)
    critical = model.critical_pulse_count(max_pulses=20)
    if critical is None:
        return
    previous = 0.0
    for n in range(critical, critical + 10):
        value = model.predict(n).convergence_time
        assert value >= previous - 1e-9
        previous = value


@given(pulses=st.integers(min_value=1, max_value=15))
def test_juniper_penalty_at_least_cisco(pulses):
    """Juniper charges re-announcements too, so its penalty after any
    regular pulse train is >= Cisco's."""
    cisco = IntendedBehaviorModel(CISCO_DEFAULTS, flap_interval=60.0, tup=0.0)
    juniper = IntendedBehaviorModel(JUNIPER_DEFAULTS, flap_interval=60.0, tup=0.0)
    assert (
        juniper.penalty_after_pulses(pulses)
        >= cisco.penalty_after_pulses(pulses) - 1e-9
    )

"""Property-based tests for penalty arithmetic (RFC 2439 invariants)."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import CISCO_DEFAULTS, DampingParams, UpdateKind
from repro.core.penalty import PenaltyState

params_strategy = st.builds(
    DampingParams,
    withdrawal_penalty=st.floats(min_value=0.0, max_value=5000.0),
    reannouncement_penalty=st.floats(min_value=0.0, max_value=5000.0),
    attribute_change_penalty=st.floats(min_value=0.0, max_value=5000.0),
    cutoff_threshold=st.floats(min_value=1000.0, max_value=10000.0),
    reuse_threshold=st.floats(min_value=10.0, max_value=999.0),
    half_life=st.floats(min_value=60.0, max_value=3600.0),
    max_hold_down=st.floats(min_value=60.0, max_value=7200.0),
)

kinds = st.sampled_from(
    [UpdateKind.WITHDRAWAL, UpdateKind.REANNOUNCEMENT, UpdateKind.ATTRIBUTE_CHANGE]
)

event_trains = st.lists(
    st.tuples(st.floats(min_value=0.001, max_value=600.0), kinds),
    min_size=1,
    max_size=40,
)


@given(params=params_strategy, penalty=st.floats(min_value=0.0, max_value=1e6),
       elapsed=st.floats(min_value=0.0, max_value=1e5))
def test_decay_never_increases(params, penalty, elapsed):
    assert params.decay(penalty, elapsed) <= penalty + 1e-9


@given(params=params_strategy, penalty=st.floats(min_value=0.0, max_value=1e6),
       e1=st.floats(min_value=0.0, max_value=1e4),
       e2=st.floats(min_value=0.0, max_value=1e4))
def test_decay_composes(params, penalty, e1, e2):
    """decay(p, a+b) == decay(decay(p, a), b)."""
    direct = params.decay(penalty, e1 + e2)
    composed = params.decay(params.decay(penalty, e1), e2)
    assert math.isclose(direct, composed, rel_tol=1e-9, abs_tol=1e-9)


@given(params=params_strategy,
       penalty=st.floats(min_value=1000.0, max_value=1e6),
       target=st.floats(min_value=1.0, max_value=999.0))
def test_time_to_reach_inverts_decay(params, penalty, target):
    elapsed = params.time_to_reach(penalty, target)
    if penalty <= target:
        assert elapsed == 0.0
    else:
        assert math.isclose(params.decay(penalty, elapsed), target, rel_tol=1e-6)


@given(events=event_trains)
@settings(max_examples=60)
def test_penalty_never_negative_and_never_above_ceiling(events):
    state = PenaltyState(CISCO_DEFAULTS)
    now = 0.0
    for delta, kind in events:
        now += delta
        value = state.charge(now, kind)
        assert 0.0 <= value <= CISCO_DEFAULTS.penalty_ceiling + 1e-9


@given(events=event_trains)
@settings(max_examples=60)
def test_charging_more_never_reduces_current_value(events):
    """At each charge instant, the post-charge value is >= the decayed
    pre-charge value."""
    state = PenaltyState(CISCO_DEFAULTS)
    now = 0.0
    for delta, kind in events:
        now += delta
        before = state.value_at(now)
        after = state.charge(now, kind)
        assert after >= before - 1e-9


@given(events=event_trains, probe=st.floats(min_value=0.0, max_value=1e5))
@settings(max_examples=60)
def test_value_matches_sampled_curve(events, probe):
    """The lazily-decayed value agrees with the reconstruction used for
    figure plotting."""
    state = PenaltyState(CISCO_DEFAULTS)
    now = 0.0
    for delta, kind in events:
        now += delta
        state.charge(now, kind)
    query = now + probe
    samples = state.sample_curve(query, query, 1.0)
    assert math.isclose(
        samples[0][1], state.value_at(query), rel_tol=1e-9, abs_tol=1e-6
    )


@given(params=params_strategy, penalty=st.floats(min_value=1.0, max_value=1e6))
def test_reuse_delay_bounded_by_hold_down_after_cap(params, penalty):
    capped = min(penalty, params.penalty_ceiling)
    assert params.reuse_delay(capped) <= params.max_hold_down + 1e-6


@given(events=event_trains)
@settings(max_examples=60)
def test_history_values_are_monotone_with_trajectory(events):
    """Every recorded history point equals the value at that instant."""
    state = PenaltyState(CISCO_DEFAULTS)
    now = 0.0
    for delta, kind in events:
        now += delta
        state.charge(now, kind)
    for time, recorded in state.history:
        # Reconstruct from scratch via sample_curve at exactly that time.
        assert recorded >= 0.0
        assert recorded <= CISCO_DEFAULTS.penalty_ceiling + 1e-9
        del time

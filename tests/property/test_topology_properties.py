"""Property-based tests for topology generation and series utilities."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.series import bin_counts, step_series_at, to_step_series
from repro.topology.internet import internet_topology
from repro.topology.mesh import mesh_topology
from repro.topology.relationships import assign_relationships
from repro.workload.pulses import PulseSchedule


@given(rows=st.integers(min_value=2, max_value=8), cols=st.integers(min_value=2, max_value=8))
@settings(max_examples=30)
def test_mesh_structure(rows, cols):
    topology = mesh_topology(rows, cols)
    assert topology.node_count == rows * cols
    assert nx.is_connected(topology.graph)
    # A torus is vertex-transitive: every node has the same degree.
    degrees = {topology.degree(n) for n in topology.nodes}
    assert len(degrees) == 1
    # Degree 4 except where a dimension of length 2 collapses a pair.
    expected = (2 if rows == 2 else 0) + (2 if cols == 2 else 0)
    assert degrees == {4 - expected // 2}


@given(nodes=st.integers(min_value=5, max_value=80), seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=25, deadline=None)
def test_internet_topology_connected_and_sized(nodes, seed):
    topology = internet_topology(nodes, seed=seed)
    assert topology.node_count == nodes
    assert nx.is_connected(topology.graph)


@given(nodes=st.integers(min_value=5, max_value=60), seed=st.integers(min_value=0, max_value=30))
@settings(max_examples=20, deadline=None)
def test_relationship_assignment_invariants(nodes, seed):
    topology = internet_topology(nodes, seed=seed, with_relationships=True)
    relationships = topology.relationships
    assert relationships is not None
    relationships.validate_acyclic(topology.nodes)
    # Exactly one root (no providers); every other node has >= 1 provider.
    orphans = [n for n in topology.nodes if not relationships.providers_of(n)]
    assert len(orphans) == 1
    # Edge counts add up.
    assert (
        relationships.provider_edge_count + relationships.peer_edge_count
        == topology.edge_count
    )


@given(pulses=st.integers(min_value=0, max_value=20),
       interval=st.floats(min_value=1.0, max_value=600.0))
def test_pulse_schedule_invariants(pulses, interval):
    schedule = PulseSchedule.regular(pulses, interval)
    assert schedule.pulse_count == pulses
    assert len(schedule) == 2 * pulses
    if pulses:
        assert schedule.events[-1][1] == "up"
        assert schedule.duration == pytest.approx((2 * pulses - 1) * interval)
        statuses = [status for _, status in schedule.events]
        assert statuses == ["down", "up"] * pulses


@given(times=st.lists(st.floats(min_value=0.0, max_value=1000.0), max_size=100),
       width=st.floats(min_value=0.1, max_value=50.0))
def test_bin_counts_conserve_events(times, width):
    series = bin_counts(times, width, start=0.0, end=1000.0 + width)
    assert sum(count for _, count in series) == len(times)


@given(deltas=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=100.0), st.sampled_from([1, -1])),
    max_size=50,
))
def test_step_series_final_value_is_sum(deltas):
    ordered = sorted(deltas, key=lambda pair: pair[0])
    series = to_step_series(ordered)
    total = sum(delta for _, delta in ordered)
    assert step_series_at(series, 1e9) == total


@given(
    nodes=st.integers(min_value=5, max_value=40),
    seed=st.integers(min_value=0, max_value=20),
    rels=st.booleans(),
)
@settings(max_examples=15, deadline=None)
def test_topology_io_round_trip(nodes, seed, rels):
    """Serialising any generated topology and rebuilding it preserves the
    graph, the metadata, and every relationship."""
    from repro.topology.io import topology_from_dict, topology_to_dict

    original = internet_topology(nodes, seed=seed, with_relationships=rels)
    rebuilt = topology_from_dict(topology_to_dict(original))
    assert rebuilt.nodes == original.nodes
    assert rebuilt.edges == original.edges
    assert rebuilt.metadata == original.metadata
    if rels:
        assert rebuilt.relationships is not None
        for u, v in original.edges:
            assert rebuilt.relationships.relationship(u, v) is (
                original.relationships.relationship(u, v)
            )
    else:
        assert rebuilt.relationships is None

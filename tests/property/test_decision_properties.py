"""Property-based tests for the decision process."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.attrs import Route
from repro.bgp.decision import rank_candidates, select_best

as_names = st.text(alphabet="abcdefgh", min_size=1, max_size=3)


@st.composite
def candidate_lists(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    candidates = []
    used_peers = set()
    for i in range(count):
        peer = f"peer{i}"
        used_peers.add(peer)
        path_tail = draw(
            st.lists(as_names, min_size=0, max_size=5)
        )
        path = (peer,) + tuple(f"x{j}-{p}" for j, p in enumerate(path_tail)) + ("origin",)
        candidates.append(
            (peer, Route(prefix="p0", as_path=path, learned_from=peer))
        )
    return candidates


def constant_pref(peer: str, route: Route) -> int:
    del peer, route
    return 100


@given(candidates=candidate_lists())
def test_best_is_first_of_ranking(candidates):
    best = select_best(candidates, constant_pref)
    ranked = rank_candidates(candidates, constant_pref)
    assert best == ranked[0]


@given(candidates=candidate_lists(), seed=st.integers(min_value=0, max_value=999))
def test_selection_is_permutation_invariant(candidates, seed):
    import random

    shuffled = list(candidates)
    random.Random(seed).shuffle(shuffled)
    assert select_best(candidates, constant_pref) == select_best(
        shuffled, constant_pref
    )


@given(candidates=candidate_lists())
def test_best_has_minimal_length_under_constant_pref(candidates):
    best = select_best(candidates, constant_pref)
    assert best is not None
    shortest = min(route.path_length for _, route in candidates)
    assert best[1].path_length == shortest


@given(candidates=candidate_lists())
def test_ranking_is_total_and_stable(candidates):
    ranked = rank_candidates(candidates, constant_pref)
    assert len(ranked) == len(candidates)
    assert set(peer for peer, _ in ranked) == set(peer for peer, _ in candidates)
    lengths = [route.path_length for _, route in ranked]
    # Within equal local-pref, ranking is by path length then peer name.
    assert lengths == sorted(lengths)


@given(candidates=candidate_lists(), boost_index=st.integers(min_value=0, max_value=7))
def test_higher_pref_always_wins(candidates, boost_index):
    boosted_peer = candidates[boost_index % len(candidates)][0]

    def pref(peer: str, route: Route) -> int:
        del route
        return 500 if peer == boosted_peer else 100

    best = select_best(candidates, pref)
    assert best is not None
    assert best[0] == boosted_peer

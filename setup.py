"""Legacy setup shim.

The primary metadata lives in ``pyproject.toml``; this file exists so the
package installs in environments without the ``wheel`` package (offline
CI), via ``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
